// Package fmm is a from-scratch multipole-accelerated piecewise-constant
// BEM solver in the mold of FASTCAP [4]: an octree over the panels, a
// Cartesian multipole expansion (monopole, dipole, quadrupole) computed in
// an upward pass, direct near-field interactions with exact Galerkin
// entries, and a Barnes–Hut opening criterion for the far field. Combined
// with GMRES (internal/pcbem.SolveIterative) it gives the O(N log N)
// matvec whose limited parallel scalability the paper contrasts against
// (references [1] and [7], Figure 8).
package fmm

import (
	"math"
	"sort"

	"parbem/internal/geom"
)

// node is one octree box.
type node struct {
	center   geom.Vec3
	halfSize float64 // half edge length of the cube
	children [8]int32
	// Panels covered: [lo, hi) into the permuted index array.
	lo, hi int32
	leaf   bool
	// adj lists leaf ids whose panels interact directly with this
	// leaf's panels (filled for leaves only).
	adj []int32
}

// tree is an octree over panel centroids.
type tree struct {
	nodes  []node
	perm   []int32 // permuted panel indices; leaves own contiguous ranges
	leafOf []int32 // panel -> containing leaf node id
}

// buildTree constructs the octree with at most leafSize panels per leaf.
func buildTree(panels []geom.Panel, leafSize int) *tree {
	n := len(panels)
	centers := make([]geom.Vec3, n)
	lo := geom.Vec3{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi := geom.Vec3{X: math.Inf(-1), Y: math.Inf(-1), Z: math.Inf(-1)}
	for i, p := range panels {
		c := p.Center()
		centers[i] = c
		lo = geom.Vec3{X: math.Min(lo.X, c.X), Y: math.Min(lo.Y, c.Y), Z: math.Min(lo.Z, c.Z)}
		hi = geom.Vec3{X: math.Max(hi.X, c.X), Y: math.Max(hi.Y, c.Y), Z: math.Max(hi.Z, c.Z)}
	}
	center := lo.Add(hi).Scale(0.5)
	size := hi.Sub(lo)
	half := 0.5 * math.Max(size.X, math.Max(size.Y, size.Z))
	if half == 0 {
		half = 1e-12
	}
	half *= 1.0000001 // keep boundary centroids strictly inside

	t := &tree{
		perm:   make([]int32, n),
		leafOf: make([]int32, n),
	}
	for i := range t.perm {
		t.perm[i] = int32(i)
	}
	t.split(centers, center, half, 0, int32(n), leafSize)
	return t
}

// split recursively partitions perm[lo:hi]; returns the node id.
func (t *tree) split(centers []geom.Vec3, center geom.Vec3, half float64, lo, hi int32, leafSize int) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{center: center, halfSize: half, lo: lo, hi: hi})
	for i := range t.nodes[id].children {
		t.nodes[id].children[i] = -1
	}
	if int(hi-lo) <= leafSize || half < 1e-15 {
		t.nodes[id].leaf = true
		for _, pi := range t.perm[lo:hi] {
			t.leafOf[pi] = id
		}
		return id
	}
	// Bucket by octant.
	oct := func(pi int32) int {
		c := centers[pi]
		o := 0
		if c.X >= center.X {
			o |= 1
		}
		if c.Y >= center.Y {
			o |= 2
		}
		if c.Z >= center.Z {
			o |= 4
		}
		return o
	}
	seg := t.perm[lo:hi]
	sort.Slice(seg, func(a, b int) bool { return oct(seg[a]) < oct(seg[b]) })
	// Find octant boundaries.
	var bounds [9]int32
	bounds[0] = lo
	idx := lo
	for o := 0; o < 8; o++ {
		for idx < hi && oct(t.perm[idx]) == o {
			idx++
		}
		bounds[o+1] = idx
	}
	qh := half / 2
	for o := 0; o < 8; o++ {
		cl, ch := bounds[o], bounds[o+1]
		if ch == cl {
			continue
		}
		cc := center
		if o&1 != 0 {
			cc.X += qh
		} else {
			cc.X -= qh
		}
		if o&2 != 0 {
			cc.Y += qh
		} else {
			cc.Y -= qh
		}
		if o&4 != 0 {
			cc.Z += qh
		} else {
			cc.Z -= qh
		}
		child := t.split(centers, cc, qh, cl, ch, leafSize)
		t.nodes[id].children[o] = child
	}
	return id
}

// leaves returns the ids of all leaf nodes.
func (t *tree) leaves() []int32 {
	var out []int32
	for id := range t.nodes {
		if t.nodes[id].leaf {
			out = append(out, int32(id))
		}
	}
	return out
}

// boxDist returns the distance between the cubes of nodes a and b
// (0 when they touch or overlap).
func (t *tree) boxDist(a, b int32) float64 {
	na, nb := &t.nodes[a], &t.nodes[b]
	var d2 float64
	for ax := geom.X; ax <= geom.Z; ax++ {
		ca := na.center.Component(ax)
		cb := nb.center.Component(ax)
		g := math.Abs(ca-cb) - na.halfSize - nb.halfSize
		if g > 0 {
			d2 += g * g
		}
	}
	return math.Sqrt(d2)
}

// computeAdjacency fills each leaf's adj list: leaves closer than
// nearDist(leafA, leafB) interact directly.
func (t *tree) computeAdjacency(factor float64) {
	ls := t.leaves()
	for _, a := range ls {
		for _, b := range ls {
			limit := factor * math.Max(t.nodes[a].halfSize, t.nodes[b].halfSize) * 2
			if t.boxDist(a, b) <= limit {
				t.nodes[a].adj = append(t.nodes[a].adj, b)
			}
		}
	}
}

// isAdjacent reports whether leaf b is in leaf a's near list.
func (t *tree) isAdjacent(a, b int32) bool {
	for _, x := range t.nodes[a].adj {
		if x == b {
			return true
		}
	}
	return false
}
