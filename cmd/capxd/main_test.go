package main

// Crash-safety tests run capxd as a real subprocess: TestMain re-execs
// the test binary as the daemon when CAPXD_TEST_CHILD is set, so
// SIGKILL hits a genuine process with a genuine journal on disk.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"parbem/internal/geom"
	"parbem/internal/geomio"
	"parbem/internal/op"
	"parbem/internal/pcbem"
	"parbem/internal/serve"
	"parbem/internal/serve/journal"
)

func TestMain(m *testing.M) {
	if os.Getenv("CAPXD_TEST_CHILD") == "1" {
		os.Exit(run(os.Args[1:]))
	}
	os.Exit(m.Run())
}

const testEdge = 0.5e-6

// crossingGeo renders the crossing-pair variant at separation h in the
// wire format.
func crossingGeo(t *testing.T, h float64) string {
	t.Helper()
	sp := geom.DefaultCrossingPair()
	sp.H = h
	var sb strings.Builder
	if err := geomio.Write(&sb, sp.Build(), 0); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// refCap solves the same variant with a one-shot direct dense pipeline.
func refCap(t *testing.T, h float64) [][]float64 {
	t.Helper()
	sp := geom.DefaultCrossingPair()
	sp.H = h
	prob, err := pcbem.NewProblem(sp.Build(), testEdge)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.SolvePipeline(op.Options{Backend: op.BackendDense, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, res.C.Rows)
	for i := range rows {
		rows[i] = res.C.Row(i)
	}
	return rows
}

// capRelErr is the max relative entry error against the reference
// diagonal (parbem.CapError convention).
func capRelErr(got, ref [][]float64) float64 {
	var maxRel float64
	for i := range ref {
		den := ref[i][i]
		if den < 0 {
			den = -den
		}
		for j := range ref[i] {
			d := got[i][j] - ref[i][j]
			if d < 0 {
				d = -d
			}
			if rel := d / den; rel > maxRel {
				maxRel = rel
			}
		}
	}
	return maxRel
}

// daemon is one capxd subprocess under test.
type daemon struct {
	t      *testing.T
	cmd    *exec.Cmd
	logs   *bytes.Buffer
	base   string
	reaped bool
}

// startDaemon launches the re-exec'd capxd on a random port and waits
// for it to publish its bound address.
func startDaemon(t *testing.T, dataDir string, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-data-dir", dataDir, "-workers", "2", "-runners", "2",
	}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CAPXD_TEST_CHILD=1")
	logs := &bytes.Buffer{}
	cmd.Stdout, cmd.Stderr = logs, logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{t: t, cmd: cmd, logs: logs}
	t.Cleanup(func() {
		if !d.reaped {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	deadline := time.Now().Add(20 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			d.base = "http://" + string(b)
			return d
		}
		if time.Now().After(deadline) {
			t.Fatalf("capxd never published its address; logs:\n%s", logs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (d *daemon) client() *serve.Client {
	c := serve.NewClient(d.base)
	c.Retry = serve.DefaultRetry
	return c
}

// kill SIGKILLs the daemon and reaps it.
func (d *daemon) kill() {
	d.t.Helper()
	d.cmd.Process.Kill()
	d.cmd.Wait()
	d.reaped = true
}

// wait reaps the daemon and returns its exit code, failing the test if
// it does not exit within timeout.
func (d *daemon) wait(timeout time.Duration) int {
	d.t.Helper()
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
		d.reaped = true
		return d.cmd.ProcessState.ExitCode()
	case <-time.After(timeout):
		d.t.Fatalf("capxd did not exit within %v; logs:\n%s", timeout, d.logs)
		return -1
	}
}

// waitRunning polls /stats until at least one job is executing.
func (d *daemon) waitRunning(c *serve.Client) {
	d.t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := c.Stats(ctx)
		if err == nil && st.Running >= 1 {
			return
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("no job started running (stats err %v); logs:\n%s", err, d.logs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// pollDone polls GET /jobs/{id} until the job is terminal.
func pollDone(t *testing.T, c *serve.Client, id string) *serve.JobResponse {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for {
		jr, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		switch jr.Status {
		case "done", "failed", "cancelled":
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, jr.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCapxdKillAndRecover is the tentpole acceptance test: SIGKILL a
// capxd mid-run, restart it on the same data dir, and every accepted
// job must reach a terminal state exactly once with results that agree
// with a direct pipeline solve.
func TestCapxdKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns capxd subprocesses")
	}
	dataDir := t.TempDir()

	// A 300ms pre-run sleep at the serve.run fault point guarantees the
	// SIGKILL lands while jobs are accepted-or-running, not finished.
	d1 := startDaemon(t, dataDir, "-faults", "serve.run:sleep=300ms")
	c1 := d1.client()
	ctx := context.Background()

	hs := []float64{0.35e-6, 0.45e-6, 0.55e-6}
	ids := make([]string, len(hs))
	for i, h := range hs {
		id, err := c1.ExtractAsync(ctx, &serve.ExtractRequest{
			Geometry: crossingGeo(t, h), EdgeM: testEdge, Backend: "dense",
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	d1.waitRunning(c1)
	d1.kill()

	// Restart on the same journal: unfinished jobs replay and run.
	d2 := startDaemon(t, dataDir)
	c2 := d2.client()
	for i, id := range ids {
		jr := pollDone(t, c2, id)
		if jr.Status != "done" || jr.Result == nil {
			t.Fatalf("job %s after recovery: status %q, error %+v", id, jr.Status, jr.Error)
		}
		if e := capRelErr(jr.Result.CFarads, refCap(t, hs[i])); e > 1e-10 {
			t.Errorf("job %s deviates from direct solve by %.3g (tol 1e-10)", id, e)
		}
	}
	st, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed == 0 {
		t.Error("restarted capxd replayed no jobs")
	}
	if st.Accepted != st.Completed+st.Failed+st.Cancelled {
		t.Errorf("job accounting broken across restart: accepted %d != %d completed + %d failed + %d cancelled",
			st.Accepted, st.Completed, st.Failed, st.Cancelled)
	}

	// Graceful exit, then audit the journal: every submitted job must
	// be terminal exactly once.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d2.wait(30 * time.Second); code != 0 {
		t.Fatalf("capxd exited %d after SIGTERM; logs:\n%s", code, d2.logs)
	}
	jr, entries, _, err := journal.Open(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	byID := make(map[string]string, len(entries))
	for _, e := range entries {
		if prev, dup := byID[e.JobID]; dup {
			t.Errorf("job %s journaled twice (%s and %s)", e.JobID, prev, e.State)
		}
		byID[e.JobID] = e.State
	}
	for _, id := range ids {
		if st := byID[id]; st != journal.StateCompleted {
			t.Errorf("job %s journaled as %q, want %q", id, st, journal.StateCompleted)
		}
	}
	for id, st := range byID {
		if !journal.Terminal(st) {
			t.Errorf("job %s left non-terminal (%q) after clean shutdown", id, st)
		}
	}
}

// TestCapxdSigtermDrain verifies the drain sequence: during the drain
// window /healthz flips to 503, new submissions are rejected with a
// structured draining error plus Retry-After, the running job still
// finishes, and the process exits 0 well within -drain-timeout.
func TestCapxdSigtermDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a capxd subprocess")
	}
	dataDir := t.TempDir()
	d := startDaemon(t, dataDir, "-faults", "serve.run:sleep=3s", "-drain-timeout", "30s")
	c := d.client()
	ctx := context.Background()

	id, err := c.ExtractAsync(ctx, &serve.ExtractRequest{
		Geometry: crossingGeo(t, 0.5e-6), EdgeM: testEdge, Backend: "dense",
	})
	if err != nil {
		t.Fatal(err)
	}
	d.waitRunning(c)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The sleeping job holds the drain open ~3s: long enough to observe
	// the draining responses.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err != nil {
			t.Fatalf("healthz during drain: %v", err)
		}
		var body struct {
			Status string `json:"status"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && body.Status == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported draining (last %d %q)", resp.StatusCode, body.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	reqBody, _ := json.Marshal(&serve.ExtractRequest{
		Geometry: crossingGeo(t, 0.5e-6), EdgeM: testEdge, Backend: "dense", Async: true,
	})
	resp, err := http.Post(d.base+"/extract", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error *serve.RequestError `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: HTTP %d, want 503", resp.StatusCode)
	}
	if env.Error == nil || env.Error.Code != serve.CodeDraining {
		t.Errorf("submit during drain: error %+v, want code %q", env.Error, serve.CodeDraining)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining rejection carries no Retry-After header")
	}

	if code := d.wait(30 * time.Second); code != 0 {
		t.Fatalf("capxd exited %d after SIGTERM; logs:\n%s", code, d.logs)
	}

	// The in-flight job was not sacrificed to the drain.
	jr, entries, _, err := journal.Open(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	state := ""
	for _, e := range entries {
		if e.JobID == id {
			state = e.State
		}
	}
	if state != journal.StateCompleted {
		t.Errorf("in-flight job journaled as %q after drain, want %q; logs:\n%s",
			state, journal.StateCompleted, d.logs)
	}
}
