package artifact

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, Options{MaxBytes: maxBytes, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	payload := []byte("near-field values of family 7f")
	if err := s.Put("abc123-near", payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get("abc123-near")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = (%q, %v), want original payload", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) hit")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A fresh Open over the same directory serves the entry (restart
	// survival).
	s2 := openT(t, dir, 0)
	got, ok = s2.Get("abc123-near")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after reopen: Get = (%q, %v)", got, ok)
	}
}

func TestStoreRejectsInvalidKeys(t *testing.T) {
	s := openT(t, t.TempDir(), 0)
	for _, key := range []string{"", "UPPER", "has space", "../escape", "a/b", ".hidden", "-flag", "k\x00y"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) hit", key)
		}
	}
}

// TestStoreTruncatedBlob pins the skip-and-recompute contract: a blob
// cut short (torn write, bad disk) is never served and is removed.
func TestStoreTruncatedBlob(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("deadbeef-near", bytes.Repeat([]byte{7}, 4096)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(dir, "deadbeef-near.art")
	if err := os.Truncate(path, 100); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if _, ok := s.Get("deadbeef-near"); ok {
		t.Fatal("truncated entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("truncated entry not removed: %v", err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
}

// TestStoreCRCMismatch flips payload bytes on disk and asserts the
// entry is dropped, not served.
func TestStoreCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("cafe42-fact", bytes.Repeat([]byte{1, 2, 3, 4}, 256)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(dir, "cafe42-fact.art")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)-1] ^= 0xff // corrupt the payload tail
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, ok := s.Get("cafe42-fact"); ok {
		t.Fatal("CRC-corrupt entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not removed: %v", err)
	}
}

// TestStoreHashNameMismatch renames an entry to a different key and
// asserts the embedded key check refuses to serve it: a blob must never
// come back under a hash it was not stored under.
func TestStoreHashNameMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("11aa-near", []byte("payload of 11aa")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := os.Rename(filepath.Join(dir, "11aa-near.art"), filepath.Join(dir, "22bb-near.art")); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	// A fresh store indexes the misnamed file but must refuse it on Get.
	s2 := openT(t, dir, 0)
	if _, ok := s2.Get("22bb-near"); ok {
		t.Fatal("entry served under a key it was not stored under")
	}
	if _, err := os.Stat(filepath.Join(dir, "22bb-near.art")); !os.IsNotExist(err) {
		t.Fatalf("misnamed entry not removed: %v", err)
	}
	_ = s
}

// TestStoreConcurrentGetPut hammers one key from concurrent readers and
// writers: every Get must return a complete, self-consistent payload
// (one of the written generations), never a torn or mixed one.
func TestStoreConcurrentGetPut(t *testing.T) {
	s := openT(t, t.TempDir(), 0)
	const key = "f00d-near"
	gen := func(g int) []byte {
		return bytes.Repeat([]byte{byte(g)}, 1024)
	}
	if err := s.Put(key, gen(0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for g := 0; g < 32; g++ {
				if err := s.Put(key, gen(g%8)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for g := 0; g < 64; g++ {
				data, ok := s.Get(key)
				if !ok {
					errs <- fmt.Errorf("concurrent Get missed")
					return
				}
				if len(data) != 1024 {
					errs <- fmt.Errorf("torn payload: %d bytes", len(data))
					return
				}
				for _, b := range data {
					if b != data[0] {
						errs <- fmt.Errorf("mixed payload: %d vs %d", b, data[0])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("Corrupt = %d under concurrent get/put", st.Corrupt)
	}
}

// TestStoreLRUEviction fills past the budget and asserts the least-
// recently-used entries leave first and the budget holds.
func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 4096)
	blob := bytes.Repeat([]byte{9}, 1024)
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("key%d", i), blob); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Touch key0 so key1 is the LRU victim.
	if _, ok := s.Get("key0"); !ok {
		t.Fatal("key0 missing before eviction")
	}
	if err := s.Put("key4", blob); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if s.Bytes() > 4096 {
		t.Fatalf("budget violated: %d bytes resident", s.Bytes())
	}
	if _, ok := s.Get("key1"); ok {
		t.Fatal("LRU victim key1 still resident")
	}
	if _, ok := s.Get("key0"); !ok {
		t.Fatal("recently-used key0 evicted")
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

// TestStoreOversizedPut pins the budget guard: a payload larger than
// the whole budget is refused instead of evicting everything.
func TestStoreOversizedPut(t *testing.T) {
	s := openT(t, t.TempDir(), 1024)
	if err := s.Put("small", []byte("ok")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("big", bytes.Repeat([]byte{1}, 2048)); err == nil {
		t.Fatal("oversized Put accepted")
	}
	if _, ok := s.Get("small"); !ok {
		t.Fatal("resident entry evicted by a refused oversized Put")
	}
}

// TestStoreCleansTempFiles asserts a crashed write's temp file is swept
// at the next Open.
func TestStoreCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, ".tmp-12345")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	openT(t, dir, 0)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived Open: %v", err)
	}
}
