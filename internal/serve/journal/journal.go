// Package journal is the durable job log behind capxd's crash safety:
// an append-only, CRC-framed record file under the daemon's -data-dir
// that survives SIGKILL and power loss, so accepted async jobs are
// never lost and finished results stay queryable across restarts.
//
// # Record format
//
// The file opens with a header record carrying the schema version;
// every record after it is one job state transition:
//
//	[4B little-endian payload length][4B CRC-32C of payload][JSON payload]
//
// Appends are fsync'd at every state edge (accepted, running,
// terminal), so the admission contract — a 202 means the job is
// durable — holds through an immediate kill. The last record of a
// crashed process may be torn; Open tolerates it: a partial frame or
// failed checksum at the tail is truncated away (the transition it
// described never became durable, exactly as if the crash had landed
// one instruction earlier). A CRC failure in the *middle* of the file
// (disk corruption, not a torn write) skips that one record and keeps
// scanning — one damaged transition must not take out every other
// job's history. A header from a newer schema than this build
// understands is a structured *SchemaError, never a panic: downgrades
// refuse loudly instead of misreading the log.
//
// # Replay
//
// Open folds the surviving records into one Entry per job — last state
// wins — and dedups by client-supplied idempotency key (first job
// keeps the key; later accepted records reusing it fold into the same
// entry, so replaying a doubled journal cannot double-run a job).
// Entries in a terminal state carry their persisted result or error;
// non-terminal entries (accepted, running, interrupted) are the jobs
// the crashed process still owed and are the caller's to re-enqueue.
//
// # Compaction
//
// Compact rewrites the log as one folded record per live entry via
// write-to-temp + atomic rename (+ directory fsync), bounding file
// growth across restarts; capxd compacts after replay and again on a
// clean drain.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"parbem/internal/faultpoint"
)

// Schema is the record-format version this build reads and writes.
const Schema = 1

// FileName is the journal's file name under the data directory.
const FileName = "jobs.journal"

// maxRecordBytes bounds one record's payload; a length field over it
// is treated as tail corruption (frames after a garbage length are
// unrecoverable anyway).
const maxRecordBytes = 64 << 20

// castagnoli is the CRC-32C table (the same polynomial storage systems
// use for frame checksums).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Job states as persisted. Accepted, Running and Interrupted are
// non-terminal: a replayed job in one of them is re-enqueued.
const (
	StateAccepted    = "accepted"
	StateRunning     = "running"
	StateCompleted   = "completed"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted" // drain deadline cut the run short
)

// Terminal reports whether state is a terminal outcome.
func Terminal(state string) bool {
	return state == StateCompleted || state == StateFailed || state == StateCancelled
}

// Record is one persisted state transition (or the file header, which
// carries only Schema).
type Record struct {
	Schema  int    `json:"schema,omitempty"`
	JobID   string `json:"job_id,omitempty"`
	State   string `json:"state,omitempty"`
	Kind    string `json:"kind,omitempty"`
	IdemKey string `json:"idem_key,omitempty"`
	// Request is the accepted job's wire payload, replayed verbatim on
	// recovery.
	Request json.RawMessage `json:"request,omitempty"`
	// Result / Error carry the terminal outcome (completed / failed).
	Result json.RawMessage `json:"result,omitempty"`
	Error  json.RawMessage `json:"error,omitempty"`
}

// Entry is the folded state of one job after replay.
type Entry struct {
	JobID   string
	Kind    string
	IdemKey string
	State   string
	Request json.RawMessage
	Result  json.RawMessage
	Error   json.RawMessage
}

// SchemaError reports a journal written by a newer (or unknown) schema
// than this build understands.
type SchemaError struct {
	Found int
}

// Error implements the error interface.
func (e *SchemaError) Error() string {
	return fmt.Sprintf("journal: file schema %d is newer than supported schema %d", e.Found, Schema)
}

// ReplayStats reports what Open found while scanning.
type ReplayStats struct {
	Records   int // intact records folded
	Corrupt   int // mid-file records skipped on CRC/JSON failure
	TornBytes int // trailing bytes truncated as a torn write
}

// Journal is an open job log. Safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	dir  string
	path string
	// Logf receives skip/truncate diagnostics (default: discard). Set
	// before concurrent use.
	Logf func(format string, args ...any)
}

// Open opens (creating if absent) the journal under dir, replays every
// surviving record and returns the folded per-job entries in first-
// accepted order. A torn tail is truncated in place so subsequent
// appends land on a clean frame boundary.
func Open(dir string) (*Journal, []Entry, ReplayStats, error) {
	var stats ReplayStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, stats, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, dir: dir, path: path, Logf: func(string, ...any) {}}
	entries, good, stats, err := j.scan()
	if err != nil {
		f.Close()
		return nil, nil, stats, err
	}
	// Truncate a torn tail so the next append starts a clean frame.
	if fi, ferr := f.Stat(); ferr == nil && fi.Size() > good {
		stats.TornBytes = int(fi.Size() - good)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, stats, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, stats, fmt.Errorf("journal: %w", err)
	}
	if good == 0 {
		// Fresh (or fully torn) file: write the schema header.
		if err := j.append(Record{Schema: Schema}); err != nil {
			f.Close()
			return nil, nil, stats, err
		}
	}
	return j, entries, stats, nil
}

// scan reads the file from the start, folding intact records into
// entries. good is the offset just past the last intact record.
func (j *Journal) scan() ([]Entry, int64, ReplayStats, error) {
	var stats ReplayStats
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, stats, fmt.Errorf("journal: %w", err)
	}
	size, err := j.f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, stats, fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, stats, fmt.Errorf("journal: %w", err)
	}
	r := io.NewSectionReader(j.f, 0, size)

	byID := make(map[string]*Entry)
	byKey := make(map[string]string) // idem key -> job id
	var order []string
	var good int64
	sawHeader := false
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// Clean EOF or a torn frame header: stop at the last good
			// offset either way.
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordBytes || int64(n) > size-good-8 {
			// A length pointing past the file (torn write) or into
			// absurdity (corrupted length): everything from here on is
			// unframeable.
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		next := good + 8 + int64(n)
		if crc32.Checksum(payload, castagnoli) != want {
			if next < size {
				// Mid-file damage: the frame after this one is intact,
				// so skip just this record and keep the rest.
				j.Logf("journal: skipping CRC-corrupt record at offset %d (%d bytes)", good, n)
				stats.Corrupt++
				good = next
				continue
			}
			// Tail damage: a torn final write, truncated by Open.
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			j.Logf("journal: skipping undecodable record at offset %d: %v", good, err)
			stats.Corrupt++
			good = next
			continue
		}
		good = next
		if !sawHeader {
			sawHeader = true
			if rec.Schema > Schema || rec.Schema < 1 {
				return nil, 0, stats, &SchemaError{Found: rec.Schema}
			}
			continue
		}
		if rec.JobID == "" {
			j.Logf("journal: skipping record with no job id at offset %d", good)
			stats.Corrupt++
			continue
		}
		stats.Records++
		e := byID[rec.JobID]
		if e == nil {
			// Idempotency-key dedup: a second accepted record reusing a
			// live key (doubled replay, retried submit that raced a
			// crash) folds into the first job instead of creating a
			// runnable twin.
			if rec.IdemKey != "" {
				if prior, ok := byKey[rec.IdemKey]; ok && prior != rec.JobID {
					j.Logf("journal: job %s duplicates idem key %q of job %s; folding", rec.JobID, rec.IdemKey, prior)
					e = byID[prior]
					e.fold(rec)
					continue
				}
			}
			e = &Entry{JobID: rec.JobID}
			byID[rec.JobID] = e
			order = append(order, rec.JobID)
			if rec.IdemKey != "" {
				byKey[rec.IdemKey] = rec.JobID
			}
		}
		e.fold(rec)
	}
	out := make([]Entry, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, good, stats, nil
}

// fold applies one transition record onto the entry (last state wins;
// payload fields stick once set).
func (e *Entry) fold(rec Record) {
	if rec.State != "" {
		e.State = rec.State
	}
	if rec.Kind != "" {
		e.Kind = rec.Kind
	}
	if rec.IdemKey != "" {
		e.IdemKey = rec.IdemKey
	}
	if len(rec.Request) > 0 {
		e.Request = rec.Request
	}
	if len(rec.Result) > 0 {
		e.Result = rec.Result
	}
	if len(rec.Error) > 0 {
		e.Error = rec.Error
	}
}

// Append writes one state-transition record and fsyncs it: when Append
// returns nil the transition is durable.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(rec)
}

// append writes and syncs one record. Caller holds mu (or is Open's
// single-threaded setup).
func (j *Journal) append(rec Record) error {
	if j.f == nil {
		return errClosed
	}
	if err := faultpoint.Hit("journal.append"); err != nil {
		return err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[8:], payload)
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := faultpoint.Hit("journal.sync"); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Compact atomically rewrites the journal as one folded record per
// entry (header first), dropping the transition history. The entries
// should be the caller's full live set: anything omitted is forgotten.
func (j *Journal) Compact(entries []Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errClosed
	}
	if err := faultpoint.Hit("journal.compact"); err != nil {
		return err
	}
	tmpPath := j.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	writeRec := func(rec Record) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		_, err = tmp.Write(payload)
		return err
	}
	err = writeRec(Record{Schema: Schema})
	for _, e := range entries {
		if err != nil {
			break
		}
		err = writeRec(Record{
			JobID: e.JobID, State: e.State, Kind: e.Kind, IdemKey: e.IdemKey,
			Request: e.Request, Result: e.Result, Error: e.Error,
		})
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	// Swap the open handle onto the new file, positioned for appends.
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	j.f.Close()
	j.f = nf
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Close syncs and closes the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Path returns the journal file's path (for tests and diagnostics).
func (j *Journal) Path() string { return j.path }

var errClosed = errors.New("journal: closed")
