package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"parbem/internal/extract"
	"parbem/internal/geom"
	"parbem/internal/geomio"
	"parbem/internal/op"
	"parbem/internal/pcbem"
)

// geoText serializes a structure to the wire format.
func geoText(t testing.TB, st *geom.Structure) string {
	t.Helper()
	var sb strings.Builder
	if err := geomio.Write(&sb, st, 0); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// crossingAt builds a crossing-pair variant at separation h.
func crossingAt(h float64) *geom.Structure {
	sp := geom.DefaultCrossingPair()
	sp.H = h
	return sp.Build()
}

// capError is the conventional relative matrix error (parbem.CapError).
func capError(got, ref [][]float64) float64 {
	var maxRel float64
	for i := range ref {
		den := ref[i][i]
		if den < 0 {
			den = -den
		}
		for j := range ref[i] {
			d := got[i][j] - ref[i][j]
			if d < 0 {
				d = -d
			}
			if rel := d / den; rel > maxRel {
				maxRel = rel
			}
		}
	}
	return maxRel
}

// denseRows flattens a linalg matrix result for comparison.
func denseRows(rows [][]float64) [][]float64 { return rows }

// startServer spins up a Server over httptest and returns a client.
func startServer(t testing.TB, opt Options) (*Server, *Client) {
	t.Helper()
	s := New(opt)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, NewClient(hs.URL)
}

func TestServeExtractAndJobs(t *testing.T) {
	s, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	st := crossingAt(geom.DefaultCrossingPair().H)
	const edge = 0.5e-6
	req := &ExtractRequest{Geometry: geoText(t, st), EdgeM: edge, Backend: "dense"}
	res, err := c.Extract(ctx, req)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if res.Backend != "dense" || res.NumPanels == 0 || len(res.CFarads) != 2 {
		t.Fatalf("bad response: backend %q, %d panels, %d rows",
			res.Backend, res.NumPanels, len(res.CFarads))
	}
	if res.JobID == "" {
		t.Error("response carries no job id")
	}

	// The service must agree with a one-shot pipeline solve.
	prob, err := pcbem.NewProblem(st, edge)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := prob.SolvePipeline(op.Options{Backend: op.BackendDense, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	refRows := make([][]float64, ref.C.Rows)
	for i := range refRows {
		refRows[i] = ref.C.Row(i)
	}
	if e := capError(res.CFarads, refRows); e > 1e-10 {
		t.Errorf("served result deviates from one-shot dense by %.3g (tol 1e-10)", e)
	}

	// Async submission round-trips through GET /jobs/{id}.
	id, err := c.ExtractAsync(ctx, req)
	if err != nil {
		t.Fatalf("async extract: %v", err)
	}
	var jr *JobResponse
	for deadline := time.Now().Add(30 * time.Second); ; {
		jr, err = c.Job(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if jr.Status == "done" || jr.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jr.Status != "done" || jr.Result == nil {
		t.Fatalf("async job: status %s, result %v, err %v", jr.Status, jr.Result, jr.Error)
	}
	if e := capError(jr.Result.CFarads, refRows); e > 1e-10 {
		t.Errorf("async result deviates by %.3g", e)
	}
	if _, err := c.Job(ctx, "j999999"); err == nil {
		t.Error("unknown job id did not 404")
	} else if re := new(RequestError); !errors.As(err, &re) || re.Code != CodeNotFound {
		t.Errorf("unknown job error = %v, want not_found", err)
	}

	stats := s.Stats()
	if stats.Accepted != 2 || stats.Completed != 2 || stats.Failed != 0 {
		t.Errorf("stats: %d accepted, %d completed, %d failed; want 2/2/0",
			stats.Accepted, stats.Completed, stats.Failed)
	}
}

// TestServeWarmCacheSpeedup is the acceptance criterion of the service
// layer: identical-family requests against a warm capxd share the plan
// cache across HTTP requests, so the 2nd..Nth variant completes at
// least 2x faster than the first while agreeing with one-shot
// ExtractPipeline solves to < 1e-10.
func TestServeWarmCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2x4 medium extractions")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the cold/warm timing ratio")
	}
	const edge = 0.25e-6
	hs := []float64{0.35e-6, 0.40e-6, 0.45e-6, 0.50e-6}
	// Tight tolerance so plan warm starts are invisible next to the
	// 1e-10 agreement bound (the TestSweepIncrementalSpeedup setup).
	popt := op.Options{Backend: op.BackendFMM, Precond: op.PrecondBlockJacobi, Tol: 1e-12}

	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()

	times := make([]time.Duration, len(hs))
	results := make([][][]float64, len(hs))
	for i, h := range hs {
		req := &ExtractRequest{
			Geometry: geoText(t, crossingAt(h)),
			EdgeM:    edge, Backend: "fastcap", Precond: "block", Tol: 1e-12,
		}
		t0 := time.Now()
		res, err := c.Extract(ctx, req)
		if err != nil {
			t.Fatalf("h=%g: %v", h, err)
		}
		times[i] = time.Since(t0)
		results[i] = res.CFarads
	}

	// Every served matrix agrees with an independent one-shot solve.
	for i, h := range hs {
		prob, err := pcbem.NewProblem(crossingAt(h), edge)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := prob.SolvePipeline(popt)
		if err != nil {
			t.Fatalf("one-shot h=%g: %v", h, err)
		}
		refRows := make([][]float64, ref.C.Rows)
		for r := range refRows {
			refRows[r] = ref.C.Row(r)
		}
		if e := capError(results[i], refRows); e > 1e-10 {
			t.Errorf("h=%g: served deviates from one-shot by %.3g (tol 1e-10)", h, e)
		}
	}

	warm := times[1]
	for _, d := range times[2:] {
		if d < warm {
			warm = d
		}
	}
	speedup := float64(times[0]) / float64(warm)
	t.Logf("cold %v, warm %v (best of %d), speedup %.2fx (times %v)",
		times[0], warm, len(hs)-1, speedup, times)
	if speedup < 2 {
		t.Errorf("warm-cache speedup %.2fx, want >= 2x (cold %v, warm %v)",
			speedup, times[0], warm)
	}
}

// TestServeSweepVariants streams a variant sweep and checks the
// family-plan reuse markers and per-point payloads.
func TestServeSweepVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("several extractions")
	}
	_, c := startServer(t, Options{Workers: 2})
	hs := []float64{0.4e-6, 0.5e-6, 0.6e-6}
	req := &SweepRequest{EdgeM: 0.5e-6, Backend: "fastcap", Precond: "block"}
	for _, h := range hs {
		req.Variants = append(req.Variants, geoText(t, crossingAt(h)))
	}
	var pts []*SweepPoint
	tr, err := c.Sweep(context.Background(), req, func(p *SweepPoint) { pts = append(pts, p) })
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if tr.Points != len(hs) || tr.Failed != 0 {
		t.Fatalf("trailer: %+v", tr)
	}
	if len(pts) != len(hs) {
		t.Fatalf("streamed %d points, want %d", len(pts), len(hs))
	}
	for i, p := range pts {
		if p.Index != i || p.Error != nil || len(p.CFarads) != 2 {
			t.Errorf("point %d: %+v", i, p)
		}
	}
	for _, p := range pts[1:] {
		if p.Reused == "none" {
			t.Errorf("warm point %d reused nothing (family plan not shared)", p.Index)
		}
	}
}

// TestServeSweepWorkerBudget pins that template sweeps receive the
// server's effective per-job worker budget rather than fanning out
// machine-wide (extract.SweepHWorkers treats it as its goroutine bound).
func TestServeSweepWorkerBudget(t *testing.T) {
	s, c := startServer(t, Options{Workers: 2, WorkerBudget: 1})
	got := -1
	s.sweepH = func(_ geom.CrossingPairSpec, in []float64, _ float64, workers int) ([]*extract.ArchFit, error) {
		got = workers
		fits := make([]*extract.ArchFit, len(in))
		for i := range fits {
			fits[i] = &extract.ArchFit{Flat: 1, Peak: 2, Decay: 1e-7}
		}
		return fits, nil
	}
	_, err := c.Sweep(context.Background(),
		&SweepRequest{EdgeM: 0.5e-6, TemplateHs: []float64{0.4e-6}},
		func(*SweepPoint) {})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if got != 1 {
		t.Fatalf("template sweep ran with workers=%d, want the budget 1", got)
	}
}

// TestServeSweepTemplatePointError pins the service-edge fix for
// extract.SweepH partial failures: a mid-sweep PointError surfaces as
// that point's error entry in the streamed JSON — tagged with its h —
// while the healthy points still stream their fits. No dropped points.
func TestServeSweepTemplatePointError(t *testing.T) {
	s, c := startServer(t, Options{Workers: 2})
	hs := []float64{0.4e-6, 0.5e-6, 0.6e-6}
	// Inject the exact failure shape SweepH produces when a point dies
	// mid-sweep: fits[i] nil for the failed point, the joined error
	// carrying one PointError per failure.
	s.sweepH = func(base geom.CrossingPairSpec, in []float64, maxEdge float64, workers int) ([]*extract.ArchFit, error) {
		fits := make([]*extract.ArchFit, len(in))
		var errs []error
		for i, h := range in {
			if i == 1 {
				errs = append(errs, &extract.PointError{H: h, Err: fmt.Errorf("injected mid-sweep failure")})
				continue
			}
			fits[i] = &extract.ArchFit{Flat: 1 + float64(i), Peak: 2, PeakPos: 0, Decay: 1e-7}
		}
		return fits, errors.Join(errs...)
	}

	var pts []*SweepPoint
	tr, err := c.Sweep(context.Background(), &SweepRequest{EdgeM: 0.5e-6, TemplateHs: hs},
		func(p *SweepPoint) { pts = append(pts, p) })
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(pts) != len(hs) {
		t.Fatalf("streamed %d points, want %d — the failed point must not be dropped", len(pts), len(hs))
	}
	if tr.Failed != 1 || tr.Points != len(hs) {
		t.Errorf("trailer: %+v, want 3 points 1 failed", tr)
	}
	for i, p := range pts {
		if p.Index != i || p.HM != hs[i] {
			t.Errorf("point %d: index %d h %g, want h %g", i, p.Index, p.HM, hs[i])
		}
	}
	if pts[0].Fit == nil || pts[2].Fit == nil {
		t.Error("healthy points lost their fits")
	}
	if pts[1].Error == nil || pts[1].Error.Code != CodePointFailed {
		t.Errorf("failed point streamed %+v, want a point_failed error entry", pts[1])
	}
	if pts[1].Fit != nil {
		t.Error("failed point carries a fit")
	}
	if !strings.Contains(pts[1].Error.Message, "injected mid-sweep failure") {
		t.Errorf("error entry lost the cause: %q", pts[1].Error.Message)
	}
}

// TestServeTemplateSweepEndToEnd runs a real (uninjected) template
// sweep through the HTTP boundary.
func TestServeTemplateSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("solves crossing problems")
	}
	_, c := startServer(t, Options{Workers: 2})
	hs := []float64{0.4e-6, 0.6e-6}
	var pts []*SweepPoint
	tr, err := c.Sweep(context.Background(), &SweepRequest{EdgeM: 0.5e-6, TemplateHs: hs},
		func(p *SweepPoint) { pts = append(pts, p) })
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if tr.Failed != 0 || len(pts) != 2 {
		t.Fatalf("trailer %+v, %d points", tr, len(pts))
	}
	for i, p := range pts {
		if p.Fit == nil {
			t.Fatalf("point %d has no fit: %+v", i, p)
		}
		if p.Fit.Flat == 0 || p.Fit.Peak == 0 {
			t.Errorf("point %d fit degenerate: %+v", i, p.Fit)
		}
	}
	// Closer wires induce a stronger arch: |b(h)| decreases with h.
	if math.Abs(pts[0].Fit.Peak) <= math.Abs(pts[1].Fit.Peak) {
		t.Errorf("|b(h)| not decreasing: %g at h=%g vs %g at h=%g",
			pts[0].Fit.Peak, hs[0], pts[1].Fit.Peak, hs[1])
	}
}

// TestServeAdmissionControl fills the queue and expects structured
// queue_full rejections rather than unbounded backlog.
func TestServeAdmissionControl(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1, QueueDepth: 1, Runners: 1})
	ctx := context.Background()

	// Occupy the single runner with a blocking job, then fill the
	// depth-1 queue so the next request must be rejected.
	started := make(chan struct{})
	block := make(chan struct{})
	slow := &job{kind: "extract", done: make(chan struct{})}
	slow.run = func() (any, error) { close(started); <-block; return nil, fmt.Errorf("cancelled") }
	if _, err := s.admit(slow); err != nil {
		t.Fatal(err)
	}
	<-started
	filler := &job{kind: "extract", done: make(chan struct{})}
	filler.run = func() (any, error) { return nil, fmt.Errorf("cancelled") }
	if _, err := s.admit(filler); err != nil {
		t.Fatalf("queue slot should be free: %v", err)
	}

	_, err := c.Extract(ctx, &ExtractRequest{
		Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6, Backend: "dense",
	})
	re := new(RequestError)
	if !errors.As(err, &re) || re.Code != CodeQueueFull {
		t.Errorf("full queue returned %v, want queue_full", err)
	}
	if s.Stats().RejectedQueueFull == 0 {
		t.Error("rejection not counted")
	}
	close(block)
}

// TestServeBadRequests checks the structured-rejection boundary over
// real HTTP for the malformed shapes the fuzzer explores.
func TestServeBadRequests(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		req  *ExtractRequest
	}{
		{"empty geometry", &ExtractRequest{EdgeM: 1e-6}},
		{"bad geometry text", &ExtractRequest{Geometry: "box 1 2 3", EdgeM: 1e-6}},
		{"zero edge", &ExtractRequest{Geometry: "conductor a\nbox 0 0 0 1 1 1", EdgeM: 0}},
		{"zero-area box", &ExtractRequest{Geometry: "conductor a\nbox 0 0 0 1 1 0", EdgeM: 1e-6}},
		{"nan coordinate", &ExtractRequest{Geometry: "conductor a\nbox nan 0 0 1 1 1", EdgeM: 1e-6}},
		{"huge panel count", &ExtractRequest{Geometry: "conductor a\nbox 0 0 0 1000 1000 1000", EdgeM: 1e-9}},
		{"bad backend", &ExtractRequest{Geometry: "conductor a\nbox 0 0 0 1 1 1", EdgeM: 1e-6, Backend: "cuda"}},
		{"bad tol", &ExtractRequest{Geometry: "conductor a\nbox 0 0 0 1 1 1", EdgeM: 1e-6, Tol: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Extract(context.Background(), tc.req)
			re := new(RequestError)
			if !errors.As(err, &re) || re.Code != CodeBadRequest {
				t.Errorf("got %v, want a bad_request rejection", err)
			}
		})
	}
	if got := s.Stats().BadRequests; got != uint64(len(cases)) {
		t.Errorf("bad request counter %d, want %d", got, len(cases))
	}
	if got := s.Stats().Accepted; got != 0 {
		t.Errorf("rejected requests were admitted: %d", got)
	}
}

// TestServeCancelledQueuedJobSkipped pins the dead-client behavior: a
// synchronous job whose requester disconnects while it is still queued
// is skipped when popped (retired as cancelled, not failed) instead
// of burning pool workers on a result nobody will read.
func TestServeCancelledQueuedJobSkipped(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1, QueueDepth: 4, Runners: 1})

	// Occupy the single runner so the next request queues.
	started := make(chan struct{})
	block := make(chan struct{})
	blocker := &job{kind: "extract", done: make(chan struct{})}
	blocker.run = func() (any, error) { close(started); <-block; return nil, fmt.Errorf("done") }
	if _, err := s.admit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started

	// Queue a job whose context is already cancelled (the deterministic
	// equivalent of a client that hung up while queued — server-side
	// context propagation from a real disconnect is asynchronous).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := s.newExtractJob(ctx, &ExtractRequest{EdgeM: 0.5e-6, Backend: "dense"}, crossingAt(0.5e-6))
	if _, err := s.admit(dead); err != nil {
		t.Fatal(err)
	}

	// A live HTTP client cancelling mid-queue gets an error promptly
	// instead of waiting out the queue.
	hctx, hcancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Extract(hctx, &ExtractRequest{
			Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6, Backend: "dense",
		})
		errCh <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); s.Stats().Queued < 2; {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	hcancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled client got a response")
	}
	close(block)

	// The dead job must be retired as cancelled without running.
	<-dead.done
	if got := jobState(dead.state.Load()); got != jobCancelled {
		t.Errorf("dead job state %v, want cancelled", got)
	}
	re, ok := dead.err.(*RequestError)
	if !ok || re.Code != CodeCancelled {
		t.Errorf("dead job error %v, want code cancelled", dead.err)
	}
	if dead.result != nil {
		t.Error("dead job produced a result")
	}
	// The solver may legitimately have run once for the live client's
	// job (its cancellation is asynchronous), but never for dead.
	var st Stats
	for deadline := time.Now().Add(5 * time.Second); ; {
		st = s.Stats()
		if st.Completed+st.Failed+st.Cancelled == st.Accepted {
			if st.Extracts > 2 {
				t.Errorf("%d solver runs for 1 live + 1 blocker + 1 dead job", st.Extracts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	// Client-gone jobs book as cancelled, not failed: the blocker's
	// injected error is the only legitimate failure, and the dead job
	// plus (depending on timing) the live client's land in cancelled.
	if st.Failed != 1 {
		t.Errorf("failed = %d, want 1 (the blocker)", st.Failed)
	}
	if st.Cancelled < 1 {
		t.Errorf("cancelled = %d, want >= 1 (the dead job)", st.Cancelled)
	}
}

// TestServePanicContainment pins the runner's panic recovery: a panic
// deep in the solver stack fails that one job with internal_error, and
// the daemon keeps serving.
func TestServePanicContainment(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1})
	s.sweepH = func(geom.CrossingPairSpec, []float64, float64, int) ([]*extract.ArchFit, error) {
		panic("injected solver panic")
	}
	_, err := c.Sweep(context.Background(),
		&SweepRequest{EdgeM: 0.5e-6, TemplateHs: []float64{0.4e-6}}, nil)
	re := new(RequestError)
	if !errors.As(err, &re) || re.Code != CodeInternal {
		t.Fatalf("panicked sweep returned %v, want internal_error", err)
	}
	// The server must still be alive and serving.
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("server dead after contained panic: %v", err)
	}
	res, err := c.Extract(context.Background(), &ExtractRequest{
		Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6, Backend: "dense",
	})
	if err != nil || len(res.CFarads) != 2 {
		t.Fatalf("extraction after contained panic: %v", err)
	}
	st := s.Stats()
	if st.Failed != 1 || st.Completed != 1 {
		t.Errorf("stats after panic: failed %d completed %d, want 1/1", st.Failed, st.Completed)
	}
}
