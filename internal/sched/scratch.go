package sched

import (
	"sync"
	"sync/atomic"
)

// MapOrInline runs n tasks on ex, or inline in index order when ex is
// nil (the serial mode of the operators: no closure scheduling, so hot
// paths stay allocation-free).
func MapOrInline(ex Executor, n int, fn func(task int)) {
	if ex == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	ex.Map(n, fn)
}

// Scratch manages the per-call mutable state of concurrency-safe
// operators (fmm/pfft Apply buffers, preconditioner solve buffers): the
// common one-call-at-a-time case reuses one dedicated warm value, so the
// steady state is allocation-free; concurrent overflow calls draw from a
// sync.Pool. T must be a comparable handle (typically a pointer).
type Scratch[T comparable] struct {
	newFn func() T
	own   T
	// busy is CAS-hammered by every concurrent Acquire (one per operator
	// Apply), so it lives on its own cache-line pair: sharing a line with
	// newFn/own would invalidate those read-only fields on every CAS, and
	// sharing with the sync.Pool header would contend with overflow
	// Put/Get traffic.
	_     [falseSharingRange]byte
	busy  atomic.Bool
	_     [falseSharingRange - 1]byte
	extra sync.Pool
}

// NewScratch builds the manager and warms the dedicated value.
func NewScratch[T comparable](newFn func() T) *Scratch[T] {
	return &Scratch[T]{newFn: newFn, own: newFn()}
}

// Acquire returns a value for exclusive use until Release.
func (s *Scratch[T]) Acquire() T {
	if s.busy.CompareAndSwap(false, true) {
		return s.own
	}
	if v, ok := s.extra.Get().(T); ok {
		return v
	}
	return s.newFn()
}

// Release returns a value obtained from Acquire.
func (s *Scratch[T]) Release(v T) {
	if v == s.own {
		s.busy.Store(false)
		return
	}
	s.extra.Put(v)
}
