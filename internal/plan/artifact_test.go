package plan

import (
	"strings"
	"sync"
	"testing"

	"parbem/internal/fmm"
	"parbem/internal/geom"
	"parbem/internal/op"
	"parbem/internal/pfft"
)

// memStore is an in-memory ArtifactStore for tests (the disk-backed one
// lives in internal/artifact and is wired up by internal/serve).
type memStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	puts int
}

func newMemStore() *memStore { return &memStore{m: map[string][]byte{}} }

func (s *memStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	data, ok := s.m[key]
	return data, ok
}

func (s *memStore) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.m[key] = append([]byte(nil), data...)
}

func (s *memStore) keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ks []string
	for k := range s.m {
		ks = append(ks, k)
	}
	return ks
}

// extractVia runs one cold extraction through a fresh plan wired to the
// given store.
func extractVia(t *testing.T, store ArtifactStore, pipe op.Options, h float64) *Result {
	t.Helper()
	p, err := New(Options{MaxEdge: 0.5e-6, Pipeline: pipe, Artifacts: store})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Extract(crossingAt(h))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPlanArtifactRoundTrip pins the persistence contract per backend:
// a fresh plan (no in-memory state, as after a process restart) wired
// to a store warmed by another plan adopts the near-field payload, its
// result matches the cold build to 1e-12, and the reuse flag reports
// the adoption.
func TestPlanArtifactRoundTrip(t *testing.T) {
	backends := []struct {
		name string
		pipe op.Options
	}{
		{"dense", op.Options{Backend: op.BackendDense, Direct: true}},
		{"fmm", op.Options{Backend: op.BackendFMM, Precond: op.PrecondBlockJacobi,
			Tol: 1e-10, FMM: &fmm.Options{Workers: 1}}},
		{"pfft", op.Options{Backend: op.BackendPFFT, Tol: 1e-10,
			PFFT: &pfft.Options{Workers: 1}}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			store := newMemStore()
			cold := extractVia(t, store, be.pipe, 0.5e-6)
			if cold.Reused.NearField {
				t.Error("cold build claims near-field reuse")
			}
			if len(store.keys()) == 0 {
				t.Fatal("cold build wrote no artifacts")
			}
			warm := extractVia(t, store, be.pipe, 0.5e-6)
			if !warm.Reused.NearField {
				t.Error("restarted plan did not adopt the near-field artifact")
			}
			if e := capError(warm.C, cold.C); e > 1e-12 {
				t.Errorf("artifact-adopted result deviates by %.3g", e)
			}
		})
	}
}

// TestPlanArtifactStats checks the hit/miss/put counters: a cold build
// misses then writes, a warm restart hits and writes nothing new.
func TestPlanArtifactStats(t *testing.T) {
	store := newMemStore()
	pipe := op.Options{Backend: op.BackendFMM, Precond: op.PrecondBlockJacobi,
		Tol: 1e-8, FMM: &fmm.Options{Workers: 1}}

	p1, err := New(Options{MaxEdge: 0.5e-6, Pipeline: pipe, Artifacts: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Extract(crossingAt(0.5e-6)); err != nil {
		t.Fatal(err)
	}
	s1 := p1.Stats()
	if s1.ArtifactHits != 0 || s1.ArtifactMisses == 0 || s1.ArtifactPuts == 0 {
		t.Errorf("cold stats: %+v", s1)
	}
	putsAfterCold := store.puts

	p2, err := New(Options{MaxEdge: 0.5e-6, Pipeline: pipe, Artifacts: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Extract(crossingAt(0.5e-6)); err != nil {
		t.Fatal(err)
	}
	s2 := p2.Stats()
	// Near payload and factor payload both hit.
	if s2.ArtifactHits < 2 || s2.ArtifactPuts != 0 {
		t.Errorf("warm stats: %+v", s2)
	}
	if store.puts != putsAfterCold {
		t.Errorf("warm build re-wrote artifacts: %d puts, want %d", store.puts, putsAfterCold)
	}
}

// TestPlanArtifactCorruptPayload pins skip-and-recompute at the decode
// layer: payloads that fail structural validation are ignored and the
// build integrates fresh, still producing correct results.
func TestPlanArtifactCorruptPayload(t *testing.T) {
	pipe := op.Options{Backend: op.BackendPFFT, Tol: 1e-10, PFFT: &pfft.Options{Workers: 1}}
	store := newMemStore()
	cold := extractVia(t, store, pipe, 0.5e-6)

	// Truncate every payload to a prefix: decode must reject the shape.
	store.mu.Lock()
	for k, v := range store.m {
		store.m[k] = v[:len(v)/3]
	}
	store.mu.Unlock()
	warm := extractVia(t, store, pipe, 0.5e-6)
	if warm.Reused.NearField {
		t.Error("truncated payload adopted")
	}
	if e := capError(warm.C, cold.C); e > 1e-12 {
		t.Errorf("recomputed result deviates by %.3g", e)
	}
}

// TestPlanArtifactKeySeparation asserts distinct geometries and
// distinct options never share a family hash, and identical inputs do.
func TestPlanArtifactKeySeparation(t *testing.T) {
	p, err := New(Options{MaxEdge: 0.5e-6, Artifacts: newMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	stA, stB := crossingAt(0.5e-6), crossingAt(0.6e-6)
	kA := p.artifactKey(stA, op.BackendDense, nil, nil)
	kA2 := p.artifactKey(stA, op.BackendDense, nil, nil)
	kB := p.artifactKey(stB, op.BackendDense, nil, nil)
	if kA == "" || kA != kA2 {
		t.Fatalf("identical inputs: %q vs %q", kA, kA2)
	}
	if kA == kB {
		t.Error("distinct geometries share a family hash")
	}
	fo := fmm.Options{LeafSize: 16}
	kF := p.artifactKey(stA, op.BackendFMM, &fo, nil)
	if kF == kA {
		t.Error("distinct backends share a family hash")
	}
	fo2 := fo
	fo2.Theta = 0.7
	if k := p.artifactKey(stA, op.BackendFMM, &fo2, nil); k == kF {
		t.Error("distinct fmm tuning shares a family hash")
	}
	// Function-valued options cannot be keyed.
	fo3 := fo
	fo3.NearEval = func(_, _ geom.Rect) (float64, bool) { return 0, false }
	if k := p.artifactKey(stA, op.BackendFMM, &fo3, nil); k != "" {
		t.Error("NearEval override produced a key")
	}
	for _, k := range []string{kA, kF} {
		if strings.ToLower(k) != k {
			t.Errorf("key %q not lowercase hex", k)
		}
	}
}

// TestPlanArtifactLengthMismatchDegrades drops one trailing float from
// every payload and asserts the shape validation refuses to adopt it.
// (Value-level integrity — bit flips inside structurally valid floats —
// is the CRC-framed disk store's job, covered in internal/artifact.)
func TestPlanArtifactLengthMismatchDegrades(t *testing.T) {
	store := newMemStore()
	pipe := op.Options{Backend: op.BackendFMM, Tol: 1e-8, FMM: &fmm.Options{Workers: 1}}
	extractVia(t, store, pipe, 0.5e-6)
	store.mu.Lock()
	for k, v := range store.m {
		if len(v) > 8 {
			store.m[k] = v[:len(v)-8]
		}
	}
	store.mu.Unlock()
	warm := extractVia(t, store, pipe, 0.5e-6)
	if warm.Reused.NearField {
		t.Error("length-mismatched payload adopted")
	}
}
