// Package parbem is a highly scalable parallel boundary element method for
// capacitance extraction, reproducing Hsiao & Daniel, DAC 2011.
//
// The solver represents surface charge with instantiable basis functions —
// a small number of rich, template-built functions instantiated near wire
// crossings — instead of thousands of piecewise-constant panels. The
// resulting dense system is tiny, so nearly all work is in the
// embarrassingly parallel matrix-fill step, which scales at ~90% parallel
// efficiency on both shared-memory and (simulated) distributed-memory
// backends.
//
// Quick start:
//
//	st := parbem.NewCrossingPair().Build()
//	res, err := parbem.Extract(st, parbem.Options{Backend: parbem.SharedMem})
//	// res.C is the Maxwell capacitance matrix in farads.
//
// # Batch extraction
//
// A service extracting many structures should use an Engine instead of
// repeated Extract calls. The engine keeps one persistent work-stealing
// worker pool and a concurrency-safe LRU of immutable expensive state —
// template basis sets keyed by exact geometry signature, tabulated
// kernel tables, warmed quadrature rules — plus a shared cache of
// template-pair integrals, so repeated or translated template layouts
// fill their system matrices mostly from lookups:
//
//	eng := parbem.NewEngine(parbem.EngineOptions{Workers: 8})
//	defer eng.Close()
//	results, err := eng.ExtractAll(structures) // concurrent, cache-shared
//	res, err = eng.Extract(st)                 // one at a time also works
//
// On a corpus of repeated bus structures the engine delivers several
// times the throughput of sequential Extract calls (see
// BenchmarkEngineBatch in internal/batch). The same engine is available
// on the command line as `capx -batch file1.geo file2.geo ...`.
//
// # Choosing a backend
//
// Every piecewise-constant solve — the dense reference, the multipole
// and precorrected-FFT accelerated baselines, and the template
// extraction behind the instantiable basis — runs through one unified
// operator pipeline (internal/op): backend-agnostic RHS construction,
// concurrent multi-RHS preconditioned GMRES on pooled workspaces (or the
// direct equilibrated-Cholesky path for dense), and the shared
// charge-to-capacitance reduction. Three operator backends implement the
// pipeline's matvec contract:
//
//   - dense (ExtractReference): parallel symmetric Galerkin assembly
//     plus a direct factorization. O(N^2) memory and O(N^3) time — the
//     accuracy reference, and the automatic choice below ~1800 panels
//     where the cubic term is cheaper than any operator construction.
//   - fmm (ExtractFastCapLike): FASTCAP-style list-driven multipole
//     operator (dual-tree interaction lists, M2L/L2L/L2P downward pass,
//     flat CSR near field); allocation-free concurrency-safe matvec.
//     The safe default at 10^4-10^5 panels and for spread-out or
//     high-aspect structures, and the only accelerated choice at tight
//     (< 1e-6) tolerances.
//   - pfft (ExtractPFFT): precorrected-FFT operator; wins when panels
//     densely fill a compact volume (the cost model's grid fill factor),
//     where the uniform grid convolution amortizes best.
//
// ExtractPipeline exposes the selection directly: BackendAuto picks one
// of the three from the panel count and grid fill factor
// (internal/costmodel.Select), and the preconditioner — point-Jacobi or
// near-field block-Jacobi (PrecondAuto uses the operator's near blocks
// when it exposes them) — cuts Krylov iteration counts across all
// accelerated backends. The same controls are available on the command
// line via `capx -backend auto|dense|fastcap|pfft -precond auto|none|jacobi|block`.
//
// Orthogonally to the backend, PipelineOptions.Precision picks the
// matvec arithmetic of the accelerated operators. PrecisionMixed runs
// the Krylov applies through a float32 mirror of the fmm or pfft
// operator — half the operator memory traffic — inside float64
// iterative refinement, so the result still converges to the requested
// tolerance in full precision; a stalling refinement falls back to pure
// fp64 automatically. PrecisionAuto (default) enables mixed only where
// the cost model expects it to win: large operators at moderate
// tolerances. Dense solves always run fp64. On the command line:
// `capx -precision auto|fp64|mixed`.
//
// # Sweeps and variants
//
// Design-loop workloads re-extract the same structure under small
// geometry perturbations: separation sweeps, width/spacing studies,
// corpus batches of near-identical cells. A Plan (NewPlan) makes that
// incremental instead of from-scratch: it factors the build into staged
// artifacts — discretization, tree/grid topology, exact near-field
// integrals, preconditioner factorizations — each content-addressed by
// what it actually depends on, so a geometry delta invalidates only the
// stages that truly changed. Boxes that move rigidly between variants
// (an h-sweep translating one layer) keep every interaction integral
// among themselves: only cross-group entries are re-integrated, block
// factors over unchanged panels are adopted, and the previous variant's
// charge solution warm-starts the Krylov solves. Identical geometry is
// a pure cache hit; a tolerance change re-solves on reused artifacts; a
// dielectric change is a single exact rescale.
//
//	p, _ := parbem.NewPlan(parbem.PlanOptions{MaxEdge: 0.25e-6})
//	for _, h := range hs {
//		sp.H = h
//		res, err := p.Extract(sp.Build()) // reuses unchanged stages
//		...
//	}
//
// On a 16-point crossing h-sweep the plan path is several times faster
// than independent ExtractPipeline calls while agreeing to 1e-10
// (TestSweepIncrementalSpeedup); SweepH and the capx -sweep flag run on
// plans internally. Results must be treated as read-only — cache hits
// return the cached object and warm starts read the stored charges.
//
// # Running as a service
//
// All of the above amortization — the engine's basis/table/pair caches,
// the family-keyed plan cache, the persistent worker pool — pays off
// most when it survives process lifetime. The capxd daemon
// (cmd/capxd, implemented in internal/serve) serves extractions over
// HTTP/JSON from exactly that shared state:
//
//	capxd -addr :8437 -workers 8 -budget 2 -queue 128
//
// The API surface:
//
//   - POST /extract solves one geomio-format geometry through the
//     unified pipeline (backend/precond/tol/edge_m request fields map
//     onto ExtractPipeline); async=true enqueues and returns a job id
//     for GET /jobs/{id}.
//   - POST /sweep streams geometry variants through the family-keyed
//     plan cache (or a template a(h), b(h) h-sweep via SweepH) as
//     NDJSON, one point per line; a failing point becomes a per-point
//     error entry, never a dropped point.
//   - GET /healthz and GET /stats expose liveness, queue gauges, job
//     counters and the engine cache counters.
//   - GET /metrics exposes the same counters plus queue-wait and
//     per-stage latency histograms in Prometheus text exposition
//     format, ready for a standard scrape config.
//
// Admission control keeps the daemon stable under heavy traffic.
// Extracts and sweeps are admitted into separate interactive and bulk
// queues served strict-priority by a fixed runner count, so a bulk
// sweep backlog cannot starve interactive extracts; a full queue
// rejects immediately (HTTP 429, structured queue_full error), and
// per-tenant token buckets (-tenant-rate/-tenant-burst, keyed on the
// X-Tenant header) turn one chatty client's overload into its own 429s
// instead of everyone's queue delay. Each job's parallel work runs on
// a budgeted view of the shared worker pool (-budget workers per job)
// so concurrent requests divide the machine instead of
// oversubscribing it.
//
// Requests carry their own deadlines: a timeout_ms field is propagated
// as a context through the engine, the plan stage builds and the GMRES
// iteration loop, so an expired deadline stops the solve within one
// Krylov iteration and returns a structured deadline_exceeded error
// (HTTP 504) with partial telemetry — the stage reached, elapsed
// milliseconds and iterations completed. Every job lands in exactly
// one of jobs_completed, jobs_failed or jobs_cancelled (client
// disconnects book as cancelled, never failed), so
// accepted == completed + failed + cancelled holds at every /stats
// snapshot.
//
// Responses carry the same telemetry schema as capx -json, and capx
// -remote http://... rides a warm server from the command line.
// Identical-family requests hit the shared plan cache across HTTP
// requests (TestServeWarmCacheSpeedup enforces the >= 2x warm
// amortization); the golden-corpus harness (TestGoldenCorpus) pins
// every backend against stored reference matrices so service
// refactors cannot silently drift the physics. The capxload harness
// (cmd/capxload) drives the golden corpus at configurable concurrency
// against a live daemon — or an in-process server with -inprocess —
// and reports sustained req/s, latency percentiles and rejection
// rates.
package parbem

import (
	"io"

	"parbem/internal/basis"
	"parbem/internal/batch"
	"parbem/internal/extract"
	"parbem/internal/fmm"
	"parbem/internal/geom"
	"parbem/internal/geomio"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/mpi"
	"parbem/internal/op"
	"parbem/internal/pcbem"
	"parbem/internal/pfft"
	"parbem/internal/plan"
	"parbem/internal/report"
	"parbem/internal/solver"
	"parbem/internal/tabulate"
)

// Geometry types (see internal/geom for details).
type (
	// Vec3 is a 3-D point or displacement in meters.
	Vec3 = geom.Vec3
	// Box is an axis-aligned conductor block.
	Box = geom.Box
	// Conductor is a named group of boxes at one potential.
	Conductor = geom.Conductor
	// Structure is a complete n-conductor extraction problem.
	Structure = geom.Structure
	// CrossingPairSpec parameterizes the elementary two-wire crossing.
	CrossingPairSpec = geom.CrossingPairSpec
	// BusSpec parameterizes an m x n two-layer bus crossbar.
	BusSpec = geom.BusSpec
	// InterconnectSpec parameterizes the synthetic transistor
	// interconnect structure.
	InterconnectSpec = geom.InterconnectSpec
	// Axis selects X, Y or Z.
	Axis = geom.Axis
)

// Axis constants.
const (
	X = geom.X
	Y = geom.Y
	Z = geom.Z
)

// NewBox constructs a box from two corners. Wire routes a wire along an
// axis.
var (
	NewBox = geom.NewBox
	Wire   = geom.Wire
)

// NewCrossingPair returns the default elementary crossing problem of paper
// Figure 1.
func NewCrossingPair() CrossingPairSpec { return geom.DefaultCrossingPair() }

// NewBus returns the default m x n bus crossbar of paper Figure 7.
func NewBus(m, n int) BusSpec { return geom.DefaultBus(m, n) }

// NewInterconnect returns the synthetic transistor-interconnect structure
// standing in for the paper's industry example.
func NewInterconnect() InterconnectSpec { return geom.DefaultInterconnect() }

// Solver types.
type (
	// Options configures extraction (backend, worker count, basis and
	// kernel tuning).
	Options = solver.Options
	// Result is a completed extraction with the capacitance matrix,
	// sizes and per-phase timing.
	Result = solver.Result
	// Backend selects serial, shared-memory or distributed execution.
	Backend = solver.Backend
	// BuilderOptions tunes instantiable-basis generation.
	BuilderOptions = basis.BuilderOptions
	// KernelConfig tunes the integration engine.
	KernelConfig = kernel.Config
	// Network is the simulated distributed-memory interconnect.
	Network = mpi.Network
	// Matrix is the dense matrix type used for capacitance results.
	Matrix = linalg.Dense
)

// Execution backends.
const (
	Serial      = solver.Serial
	SharedMem   = solver.SharedMem
	Distributed = solver.Distributed
)

// Eps0 is the vacuum permittivity (F/m).
const Eps0 = kernel.Eps0

// NewMatrix allocates a zeroed rows x cols dense matrix (the type
// capacitance results use).
func NewMatrix(rows, cols int) *Matrix { return linalg.NewDense(rows, cols) }

// DefaultKernelConfig returns the standard integration configuration.
func DefaultKernelConfig() *KernelConfig { return kernel.DefaultConfig() }

// FastKernelConfig returns the integration configuration with the
// tabulated elementary functions of paper Section 4.2.3 enabled.
func FastKernelConfig() *KernelConfig { return kernel.FastConfig() }

// Extract runs instantiable-basis capacitance extraction on a structure.
func Extract(st *Structure, opt Options) (*Result, error) {
	return solver.Extract(st, opt)
}

// Batch extraction engine types (see internal/batch for details).
type (
	// Engine is a batch extraction service: persistent worker pool plus
	// caches of basis sets, kernel tables and pair integrals shared
	// across extractions.
	Engine = batch.Engine
	// EngineOptions configures NewEngine; the zero value is a
	// SharedMem engine with GOMAXPROCS workers and caching enabled.
	EngineOptions = batch.Options
	// EngineStats reports the engine's cache effectiveness.
	EngineStats = batch.Stats
	// CollocationSpec sizes the tabulated collocation kernel used when
	// Options.Tables / EngineOptions.Tables is enabled (zero value =
	// calibrated defaults).
	CollocationSpec = tabulate.CollocationSpec
)

// NewEngine creates a batch extraction engine and starts its worker
// pool. Call Close when done with it.
func NewEngine(opt EngineOptions) *Engine { return batch.New(opt) }

// NewNetwork creates a simulated message-passing network of the given
// size for the Distributed backend (fields Latency/InvBandwidth add an
// interconnect cost model).
func NewNetwork(size int) *Network { return mpi.NewNetwork(size) }

// ReferenceResult is a piecewise-constant baseline extraction.
type ReferenceResult = pcbem.Result

// PipelineOptions configures the unified piecewise-constant solve
// pipeline: operator backend, preconditioner, tolerance and per-backend
// operator tuning. The zero value selects the backend with the cost
// model, the preconditioner automatically and a 1e-4 tolerance.
type PipelineOptions = op.Options

// Pipeline backend and preconditioner selectors (see the "Choosing a
// backend" section above).
const (
	BackendAuto        = op.BackendAuto
	BackendDense       = op.BackendDense
	BackendFMM         = op.BackendFMM
	BackendPFFT        = op.BackendPFFT
	PrecondAuto        = op.PrecondAuto
	PrecondNone        = op.PrecondNone
	PrecondJacobi      = op.PrecondJacobi
	PrecondBlockJacobi = op.PrecondBlockJacobi
	PrecisionAuto      = op.PrecisionAuto
	PrecisionFP64      = op.PrecisionFP64
	PrecisionMixed     = op.PrecisionMixed
)

// Precision selects the matvec arithmetic of the accelerated backends:
// fp64, mixed (float32 operator inside float64 iterative refinement) or
// auto (the cost model picks). See the "Choosing a backend" section.
type Precision = op.Precision

// ParsePrecision parses a -precision selector ("auto", "fp64",
// "mixed"; "" = auto).
func ParsePrecision(s string) (Precision, error) { return op.ParsePrecision(s) }

// ExtractPipeline solves the structure with the unified operator
// pipeline: panelize at maxEdge, build the selected (or cost-model
// chosen) operator backend, solve all conductor excitations with
// preconditioned GMRES (or directly for the dense backend with
// opt.Direct) and reduce to the capacitance matrix. The result reports
// the resolved backend and the total Krylov iteration count.
func ExtractPipeline(st *Structure, maxEdge float64, opt PipelineOptions) (*ReferenceResult, error) {
	p, err := pcbem.NewProblem(st, maxEdge)
	if err != nil {
		return nil, err
	}
	return p.SolvePipeline(opt)
}

// ExtractReference solves the structure with a finely discretized
// piecewise-constant Galerkin BEM and a dense direct solve. It is O(N^3)
// but gives the accuracy reference for the instantiable-basis solver.
// maxEdge is the maximum panel edge length in meters.
func ExtractReference(st *Structure, maxEdge float64) (*ReferenceResult, error) {
	p, err := pcbem.NewProblem(st, maxEdge)
	if err != nil {
		return nil, err
	}
	return p.SolveDense()
}

// FastCapOptions tunes the multipole baseline. Set Tol to override the
// default 1e-4 GMRES relative tolerance.
type FastCapOptions = fmm.Options

// ExtractFastCapLike solves the structure with the multipole-accelerated
// piecewise-constant solver (FASTCAP-style: octree + interaction lists +
// Cartesian multipole/local expansions + block-Jacobi preconditioned
// GMRES through the unified pipeline). The returned result carries the
// total Krylov iteration count across all conductor excitations (solved
// concurrently).
func ExtractFastCapLike(st *Structure, maxEdge float64, opt FastCapOptions) (*ReferenceResult, error) {
	return ExtractPipeline(st, maxEdge, PipelineOptions{
		Backend: BackendFMM, Tol: opt.Tol, FMM: &opt,
	})
}

// PFFTOptions tunes the precorrected-FFT baseline. Set Tol to override
// the default 1e-4 GMRES relative tolerance.
type PFFTOptions = pfft.Options

// ExtractPFFT solves the structure with the precorrected-FFT accelerated
// piecewise-constant solver (through the same unified pipeline).
func ExtractPFFT(st *Structure, maxEdge float64, opt PFFTOptions) (*ReferenceResult, error) {
	return ExtractPipeline(st, maxEdge, PipelineOptions{
		Backend: BackendPFFT, Tol: opt.Tol, PFFT: &opt,
	})
}

// Staged extraction plan types (see the "Sweeps and variants" section
// above and internal/plan for the stage DAG and reuse rules).
type (
	// Plan is an incremental build/solve chain over geometry variants.
	Plan = plan.Plan
	// PlanOptions configures NewPlan (MaxEdge is required; Pipeline
	// mirrors PipelineOptions).
	PlanOptions = plan.Options
	// PlanResult is a completed plan extraction with per-stage timings
	// and reuse flags. Treat it as read-only.
	PlanResult = plan.Result
	// PlanStats counts a plan's stage builds and reuse.
	PlanStats = plan.Stats
)

// NewPlan creates a staged extraction plan for re-extracting geometry
// variants with delta-aware stage reuse.
func NewPlan(opt PlanOptions) (*Plan, error) { return plan.New(opt) }

// ReadStructure parses a structure from the line-oriented text format of
// internal/geomio (see that package's documentation for the grammar).
func ReadStructure(r io.Reader) (*Structure, error) { return geomio.Read(r) }

// WriteStructure serializes a structure in the text format with the given
// unit scale (0 = microns).
func WriteStructure(w io.Writer, st *Structure, unit float64) error {
	return geomio.Write(w, st, unit)
}

// WriteSpice emits the capacitance matrix as a SPICE subcircuit, skipping
// elements below minCap farads.
func WriteSpice(w io.Writer, c *Matrix, names []string, minCap float64) error {
	return report.WriteSpice(w, c, names, minCap)
}

// CheckMaxwell validates the structural properties of a Maxwell
// capacitance matrix, returning a list of violations (empty = clean).
func CheckMaxwell(c *Matrix, tol float64) []string { return report.CheckMaxwell(c, tol) }

// FormatMatrix renders a capacitance matrix as aligned text at the given
// scale (e.g. 1e15 for femtofarads).
func FormatMatrix(c *Matrix, scale float64, names []string) string {
	return report.FormatMatrix(c, scale, names)
}

// CapToInfinity returns per-conductor total capacitance (row sums).
func CapToInfinity(c *Matrix) []float64 { return report.CapToInfinity(c) }

// Template-extraction pipeline (paper Figure 2): solve the elementary
// crossing problem with the fine reference solver and decompose the
// induced charge profile into flat + arch shapes.
type (
	// Profile is the induced charge profile along the target wire.
	Profile = extract.Profile
	// ArchFit is the fitted flat/arch decomposition a(h), b(h).
	ArchFit = extract.ArchFit
)

// CrossingProfile measures the induced charge profile of a crossing pair.
func CrossingProfile(sp CrossingPairSpec, maxEdge float64) (*Profile, error) {
	return extract.CrossingProfile(sp, maxEdge)
}

// FitArch decomposes a measured profile into the Figure 2 shapes.
func FitArch(p *Profile, sp CrossingPairSpec) (*ArchFit, error) {
	return extract.FitArch(p, sp)
}

// SweepH extracts a(h), b(h) over a range of separations.
func SweepH(base CrossingPairSpec, hs []float64, maxEdge float64) ([]*ArchFit, error) {
	return extract.SweepH(base, hs, maxEdge)
}

// CapError returns the maximum relative difference between two capacitance
// matrices, normalized per-row by the diagonal (the conventional accuracy
// metric for extraction).
func CapError(got, ref *Matrix) float64 {
	var maxRel float64
	for i := 0; i < ref.Rows; i++ {
		den := ref.At(i, i)
		if den < 0 {
			den = -den
		}
		for j := 0; j < ref.Cols; j++ {
			d := got.At(i, j) - ref.At(i, j)
			if d < 0 {
				d = -d
			}
			if rel := d / den; rel > maxRel {
				maxRel = rel
			}
		}
	}
	return maxRel
}

// DefaultBuilderOptionsPub exposes the calibrated basis-builder defaults.
func DefaultBuilderOptionsPub() BuilderOptions { return basis.DefaultBuilderOptions() }
