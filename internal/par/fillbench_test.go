package par

// Fill benchmarks: the shared-memory system setup at fixed worker counts,
// used for allocation tracking (the integration hot path must stay
// allocation-free) and for profiling the parallel fill.

import (
	"testing"

	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/geom"
)

func benchFillWorkers(b *testing.B, workers int) {
	b.Helper()
	st := geom.DefaultBus(8, 8).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fill(set, in, Options{Workers: workers})
	}
}

func BenchmarkFill1(b *testing.B)  { benchFillWorkers(b, 1) }
func BenchmarkFill10(b *testing.B) { benchFillWorkers(b, 10) }
