package parbem

import (
	"math"
	"testing"
)

func TestPublicQuickstart(t *testing.T) {
	st := NewCrossingPair().Build()
	res, err := Extract(st, Options{Backend: SharedMem})
	if err != nil {
		t.Fatal(err)
	}
	if res.C.Rows != 2 {
		t.Fatalf("C rows = %d", res.C.Rows)
	}
	if res.C.At(0, 1) >= 0 {
		t.Error("coupling must be negative")
	}
}

func TestInstantiableVsReferenceAccuracy(t *testing.T) {
	// The headline accuracy claim: the instantiable-basis solution stays
	// within a few percent of a finely discretized piecewise-constant
	// reference (paper reports 2.8% on the industry example).
	st := NewCrossingPair().Build()
	fast, err := Extract(st, Options{Backend: SharedMem})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ExtractReference(st, 0.35e-6)
	if err != nil {
		t.Fatal(err)
	}
	errRel := CapError(fast.C, ref.C)
	t.Logf("instantiable vs reference: %.2f%% (N=%d vs %d panels)",
		100*errRel, fast.N, ref.NumPanels)
	if errRel > 0.10 {
		t.Errorf("accuracy %.1f%% worse than 10%%", 100*errRel)
	}
	// Compactness claim: far fewer unknowns than the panel reference.
	if fast.N >= ref.NumPanels/4 {
		t.Errorf("basis not compact: N=%d vs %d panels", fast.N, ref.NumPanels)
	}
}

func TestFastCapLikeBaseline(t *testing.T) {
	st := NewCrossingPair().Build()
	ref, err := ExtractReference(st, 0.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ExtractFastCapLike(st, 0.5e-6, FastCapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e := CapError(fc.C, ref.C); e > 0.03 {
		t.Errorf("FastCap-like error %.2f%% vs dense on same mesh", 100*e)
	}
	if fc.Iterations == 0 {
		t.Error("expected Krylov iterations")
	}
}

func TestPFFTBaseline(t *testing.T) {
	st := NewCrossingPair().Build()
	ref, err := ExtractReference(st, 0.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := ExtractPFFT(st, 0.5e-6, PFFTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e := CapError(pf.C, ref.C); e > 0.05 {
		t.Errorf("pFFT error %.2f%% vs dense on same mesh", 100*e)
	}
}

func TestCapError(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{10, -2, -2, 10}}
	b := &Matrix{Rows: 2, Cols: 2, Data: []float64{11, -2, -2, 10}}
	if e := CapError(b, a); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("CapError = %g want 0.1", e)
	}
}

func TestSetupDominatesTotal(t *testing.T) {
	// The paper's core premise: >95% of runtime in system setup. On a
	// small example we assert a softer 80%.
	st := NewBus(4, 4).Build()
	res, err := Extract(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Timing.Setup) / float64(res.Timing.Total)
	t.Logf("setup fraction: %.1f%% (N=%d, M=%d)", 100*frac, res.N, res.M)
	if frac < 0.80 {
		t.Errorf("setup fraction %.1f%% below 80%%", 100*frac)
	}
}
