package fmm

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"parbem/internal/geom"
)

// speedupPanels is the ~5k panel configuration the list-based operator
// is benchmarked on.
func speedupPanels(tb testing.TB) []geom.Panel {
	tb.Helper()
	return busPanels(tb, 7, 7, 0.45e-6)
}

// TestFMMOperatorSpeedup enforces the headline win of the list-based
// rebuild: at ~5k panels a single-threaded Apply must be at least 3x
// faster than the seed recursive operator, while agreeing with it to
// multipole truncation accuracy.
func TestFMMOperatorSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second construction")
	}
	panels := speedupPanels(t)
	n := len(panels)
	if n < 4000 || n > 7000 {
		t.Fatalf("problem size drifted: N=%d, want ~5k", n)
	}

	newOp := NewOperator(panels, Options{Workers: 1})
	refOp := newRefOperator(panels, Options{})
	refOp.opt.Workers = 1

	rng := rand.New(rand.NewSource(7))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	want := make([]float64, n)

	timeApplies := func(apply func(dst, x []float64), dst []float64) time.Duration {
		apply(dst, x) // warm
		best := time.Duration(math.MaxInt64)
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			apply(dst, x)
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	tNew := timeApplies(newOp.Apply, got)
	tRef := timeApplies(refOp.Apply, want)

	// Accuracy cross-check against the exact model both operators
	// approximate: near CSR row plus brute-force point charges for
	// everything else. The list-based operator must stay at
	// TestOperatorMatchesDenseMatvec-level accuracy — and must not be
	// worse than the recursive walk it replaces (at this scale the
	// recursive walk's per-point opening criterion drifts to several
	// percent; the dual-tree criterion stays well under 1%).
	inNear := make([]bool, n)
	var numNew, numRef, den float64
	for i := 0; i < n; i++ {
		row := newOp.nearIdx[newOp.nearOff[i]:newOp.nearOff[i+1]]
		val := newOp.nearVal[newOp.nearOff[i]:newOp.nearOff[i+1]]
		var near float64
		for k, pj := range row {
			near += val[k] * x[pj]
			inNear[pj] = true
		}
		var far float64
		for j := 0; j < n; j++ {
			if inNear[j] {
				continue
			}
			far += x[j] * newOp.areas[j] / newOp.centers[i].Dist(newOp.centers[j])
		}
		for _, pj := range row {
			inNear[pj] = false
		}
		exact := near + newOp.scale*newOp.areas[i]*far
		dn := got[i] - exact
		dr := want[i] - exact
		numNew += dn * dn
		numRef += dr * dr
		den += exact * exact
	}
	relNew := math.Sqrt(numNew / den)
	relRef := math.Sqrt(numRef / den)
	t.Logf("accuracy vs exact model: list-based %.2e, recursive %.2e", relNew, relRef)
	if relNew > 0.02 {
		t.Fatalf("list-based operator rel err %g > 2%%", relNew)
	}
	if relNew > relRef {
		t.Fatalf("list-based operator less accurate than recursive reference: %g vs %g", relNew, relRef)
	}

	speedup := float64(tRef) / float64(tNew)
	t.Logf("N=%d: recursive %v, list-based %v, speedup %.1fx", n, tRef, tNew, speedup)
	if speedup < 3 {
		t.Fatalf("Apply speedup %.2fx < 3x (recursive %v, list-based %v)", speedup, tRef, tNew)
	}
}

// BenchmarkFMMApply measures the steady-state list-driven matvec in both
// precisions on the same operator (the fp64/mixed delta is the headline
// bandwidth win of the float32 mirror).
func BenchmarkFMMApply(b *testing.B) {
	panels := busPanels(b, 8, 8, 0.75e-6)
	op := NewOperator(panels, Options{})
	op.EnableMixed()
	x := make([]float64, len(panels))
	dst := make([]float64, len(panels))
	for i := range x {
		x[i] = 1
	}
	b.Run("fp64", func(b *testing.B) {
		op.Apply(dst, x)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op.Apply(dst, x)
		}
	})
	b.Run("mixed", func(b *testing.B) {
		op.ApplyMixed(dst, x)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op.ApplyMixed(dst, x)
		}
	})
}

// BenchmarkFMMApplySerial is the single-worker variant (the per-entry
// arithmetic floor without scheduling).
func BenchmarkFMMApplySerial(b *testing.B) {
	panels := busPanels(b, 8, 8, 0.75e-6)
	op := NewOperator(panels, Options{Workers: 1})
	x := make([]float64, len(panels))
	dst := make([]float64, len(panels))
	for i := range x {
		x[i] = 1
	}
	op.Apply(dst, x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(dst, x)
	}
}

// BenchmarkFMMConstruct measures operator construction (tree, dual-tree
// traversal, parallel near-field assembly).
func BenchmarkFMMConstruct(b *testing.B) {
	panels := busPanels(b, 8, 8, 0.75e-6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewOperator(panels, Options{})
	}
}
