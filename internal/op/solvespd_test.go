package op

import (
	"math"
	"testing"

	"parbem/internal/linalg"
)

func TestSolveSPDOnSPDMatrix(t *testing.T) {
	// Well-conditioned SPD with wildly varying diagonal scales: the
	// equilibrated Cholesky path must solve it.
	n := 40
	P := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		scale := math.Pow(10, float64(i%8)-4)
		P.Set(i, i, scale)
		if i > 0 {
			c := 0.1 * math.Sqrt(P.At(i, i)*P.At(i-1, i-1))
			P.Set(i, i-1, c)
			P.Set(i-1, i, c)
		}
	}
	phi := linalg.NewDense(n, 2)
	for i := 0; i < n; i++ {
		phi.Set(i, 0, 1)
		phi.Set(i, 1, float64(i))
	}
	x, err := SolveSPD(P, phi)
	if err != nil {
		t.Fatal(err)
	}
	// Verify P x = phi.
	for j := 0; j < 2; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = x.At(i, j)
		}
		got := make([]float64, n)
		P.MulVec(got, col)
		for i := 0; i < n; i++ {
			if math.Abs(got[i]-phi.At(i, j)) > 1e-8*math.Max(1, math.Abs(phi.At(i, j))) {
				t.Fatalf("residual at (%d,%d): %g vs %g", i, j, got[i], phi.At(i, j))
			}
		}
	}
}

func TestSolveSPDFallsBackOnIndefinite(t *testing.T) {
	// Symmetric indefinite (one negative eigenvalue): Cholesky cannot
	// factor it, the LU fallback must still solve the system.
	P := linalg.NewDenseFrom(2, 2, []float64{1, 2, 2, 1})
	phi := linalg.NewDenseFrom(2, 1, []float64{3, 0})
	x, err := SolveSPD(P, phi)
	if err != nil {
		t.Fatal(err)
	}
	// Exact solution: x = [-1, 2].
	if math.Abs(x.At(0, 0)+1) > 1e-12 || math.Abs(x.At(1, 0)-2) > 1e-12 {
		t.Fatalf("fallback solution [%g %g], want [-1 2]", x.At(0, 0), x.At(1, 0))
	}
}

func TestSolveSPDZeroDiagonalGoesToLU(t *testing.T) {
	// A zero diagonal entry defeats equilibration; the LU fallback must
	// handle the (permuted) solve.
	P := linalg.NewDenseFrom(2, 2, []float64{0, 1, 1, 0})
	phi := linalg.NewDenseFrom(2, 1, []float64{5, 7})
	x, err := SolveSPD(P, phi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.At(0, 0)-7) > 1e-12 || math.Abs(x.At(1, 0)-5) > 1e-12 {
		t.Fatalf("solution [%g %g], want [7 5]", x.At(0, 0), x.At(1, 0))
	}
}

func TestSolveSPDSingularErrors(t *testing.T) {
	P := linalg.NewDense(2, 2) // all zeros
	phi := linalg.NewDenseFrom(2, 1, []float64{1, 1})
	if _, err := SolveSPD(P, phi); err == nil {
		t.Fatal("singular system must error")
	}
}
