module parbem

go 1.22
