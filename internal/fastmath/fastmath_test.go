package fastmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	maxRel := 0.0
	for i := 0; i < 100000; i++ {
		// Log-uniform over many decades.
		x := math.Exp(rng.Float64()*60 - 30)
		got := Log(x)
		want := math.Log(x)
		rel := math.Abs(got - want)
		if math.Abs(want) > 1 {
			rel /= math.Abs(want)
		}
		if rel > maxRel {
			maxRel = rel
		}
	}
	// Midpoint ZOH over 2^14 bins: absolute error on ln(m) < ln(2)/2^14.
	if bound := ln2 / logTableSize; maxRel > bound {
		t.Fatalf("max log error %g exceeds bound %g", maxRel, bound)
	}
}

func TestLogSpecialValues(t *testing.T) {
	if !math.IsInf(Log(0), -1) {
		t.Error("Log(0) != -Inf")
	}
	if !math.IsNaN(Log(-1)) {
		t.Error("Log(-1) != NaN")
	}
	if !math.IsInf(Log(math.Inf(1)), 1) {
		t.Error("Log(+Inf) != +Inf")
	}
	if !math.IsNaN(Log(math.NaN())) {
		t.Error("Log(NaN) != NaN")
	}
	// Subnormal falls back to math.Log.
	sub := math.Float64frombits(1)
	if got, want := Log(sub), math.Log(sub); got != want {
		t.Errorf("Log(subnormal) = %g want %g", got, want)
	}
}

func TestAtanAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bound := 1.0 / atanTableSize // ZOH with midpoint sampling, |d atan| <= 1
	for i := 0; i < 100000; i++ {
		x := math.Tan((rng.Float64() - 0.5) * 3.0)
		got := Atan(x)
		want := math.Atan(x)
		if e := math.Abs(got - want); e > bound {
			t.Fatalf("atan(%g): error %g > %g", x, e, bound)
		}
	}
}

func TestAtanOddProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return Atan(-x) == -Atan(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtanLargeArgs(t *testing.T) {
	for _, x := range []float64{1e6, 1e12, math.MaxFloat64} {
		got := Atan(x)
		if math.Abs(got-math.Pi/2) > 1e-4 {
			t.Errorf("Atan(%g) = %g, want ~pi/2", x, got)
		}
		if Atan(-x) != -got {
			t.Errorf("Atan(-%g) not odd", x)
		}
	}
}

func TestAtan2Quadrants(t *testing.T) {
	cases := []struct{ y, x float64 }{
		{1, 1}, {1, -1}, {-1, 1}, {-1, -1},
		{0, 1}, {0, -1}, {1, 0}, {-1, 0},
		{0.3, 2}, {-5, 0.01}, {2, -0.5},
	}
	for _, c := range cases {
		got := Atan2(c.y, c.x)
		want := math.Atan2(c.y, c.x)
		if math.Abs(got-want) > 2e-4 {
			t.Errorf("Atan2(%g,%g) = %g want %g", c.y, c.x, got, want)
		}
	}
	if Atan2(0, 0) != 0 {
		t.Error("Atan2(0,0) != 0")
	}
	if !math.IsNaN(Atan2(math.NaN(), 1)) {
		t.Error("Atan2(NaN,1) != NaN")
	}
}

func TestAtan2ContinuityAcrossDenominatorZero(t *testing.T) {
	// The kernel relies on atan2 continuity as the denominator crosses
	// zero with nonzero numerator.
	prev := Atan2(0.5, 0.01)
	for x := 0.01; x > -0.01; x -= 1e-4 {
		cur := Atan2(0.5, x)
		if math.Abs(cur-prev) > 0.05 {
			t.Fatalf("jump at x=%g: %g -> %g", x, prev, cur)
		}
		prev = cur
	}
}

func TestTableBytes(t *testing.T) {
	if TableBytes() < 8*(1<<14) {
		t.Errorf("TableBytes = %d implausibly small", TableBytes())
	}
}

func BenchmarkStdLog(b *testing.B) {
	x := 1.2345
	var s float64
	for i := 0; i < b.N; i++ {
		s += math.Log(x + float64(i&15))
	}
	_ = s
}

func BenchmarkFastLog(b *testing.B) {
	x := 1.2345
	var s float64
	for i := 0; i < b.N; i++ {
		s += Log(x + float64(i&15))
	}
	_ = s
}

func BenchmarkStdAtan(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s += math.Atan(0.1 + float64(i&15))
	}
	_ = s
}

func BenchmarkFastAtan(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s += Atan(0.1 + float64(i&15))
	}
	_ = s
}
