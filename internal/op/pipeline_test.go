package op

import (
	"math"
	"testing"

	"parbem/internal/costmodel"
	"parbem/internal/fmm"
	"parbem/internal/geom"
	"parbem/internal/pfft"
)

// busSpec panelizes the default bus crossbar into a pipeline spec.
func busSpec(tb testing.TB, m, n int, edge float64) Spec {
	tb.Helper()
	st := geom.DefaultBus(m, n).Build()
	panels := st.Panelize(edge)
	if len(panels) == 0 {
		tb.Fatal("no panels generated")
	}
	return Spec{Panels: panels, NumConductors: st.NumConductors()}
}

// capDiff returns the maximum capacitance deviation relative to the
// reference row diagonal.
func capDiff(got, ref *Result) float64 {
	var worst float64
	for i := 0; i < ref.C.Rows; i++ {
		den := math.Abs(ref.C.At(i, i))
		for j := 0; j < ref.C.Cols; j++ {
			if rel := math.Abs(got.C.At(i, j)-ref.C.At(i, j)) / den; rel > worst {
				worst = rel
			}
		}
	}
	return worst
}

// TestPipelineDirectMatchesIterativeDense pins the two dense paths of
// the pipeline to each other: the direct equilibrated-Cholesky solve and
// the preconditioned GMRES iteration over the same assembled matrix must
// produce the same capacitance matrix.
func TestPipelineDirectMatchesIterativeDense(t *testing.T) {
	spec := busSpec(t, 2, 2, 1e-6)
	direct, err := New(spec, Options{Backend: BackendDense, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := direct.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if dres.Iterations != 0 {
		t.Errorf("direct path reported %d Krylov iterations", dres.Iterations)
	}
	iter, err := New(spec, Options{Backend: BackendDense, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	ires, err := iter.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if ires.Iterations == 0 {
		t.Error("iterative path reported no iterations")
	}
	if d := capDiff(ires, dres); d > 1e-5 {
		t.Errorf("iterative dense deviates from direct by %g", d)
	}
}

// TestFMMSolveMatchesDense pins the multipole backend against the dense
// reference through the shared pipeline (formerly in internal/fmm).
func TestFMMSolveMatchesDense(t *testing.T) {
	spec := busSpec(t, 2, 2, 1e-6)
	direct, err := New(spec, Options{Backend: BackendDense, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := direct.Extract()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(spec, Options{
		Backend: BackendFMM, Tol: 1e-6,
		FMM: &fmm.Options{Theta: 0.35},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != BackendFMM {
		t.Fatalf("resolved backend %v, want fmm", res.Backend)
	}
	if d := capDiff(res, dres); d > 0.02 {
		t.Errorf("fmm capacitance deviates from dense by %g", d)
	}
}

// TestPFFTSolveMatchesDense pins the precorrected-FFT backend against
// the dense reference through the shared pipeline (formerly in
// internal/pfft).
func TestPFFTSolveMatchesDense(t *testing.T) {
	spec := busSpec(t, 2, 2, 1e-6)
	direct, err := New(spec, Options{Backend: BackendDense, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := direct.Extract()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := New(spec, Options{
		Backend: BackendPFFT, Tol: 1e-6,
		PFFT: &pfft.Options{NearRadius: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if d := capDiff(res, dres); d > 0.05 {
		t.Errorf("pfft capacitance deviates from dense by %g", d)
	}
}

// TestAutoBackendFollowsCostModel pins BackendAuto to the cost model's
// recommendation on both sides of the dense cutoff.
func TestAutoBackendFollowsCostModel(t *testing.T) {
	small := busSpec(t, 2, 2, 1.5e-6).withDefaults()
	pl, err := New(small, Options{Backend: BackendAuto, Direct: false})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Backend() != BackendDense {
		t.Errorf("auto chose %v for N=%d, want dense", pl.Backend(), small.N())
	}

	big := busSpec(t, 8, 8, 0.75e-6).withDefaults()
	if big.N() <= costmodel.DenseMaxPanels {
		t.Fatalf("test geometry too small to leave the dense regime: N=%d", big.N())
	}
	span, med := big.stats()
	want := costmodel.Select(costmodel.Workload{
		Panels: big.N(), Span: span, MedianEdge: med, Tol: 1e-4,
	})
	pl2, err := New(big, Options{Backend: BackendAuto})
	if err != nil {
		t.Fatal(err)
	}
	got := pl2.Backend()
	if (want == costmodel.ChooseFMM && got != BackendFMM) ||
		(want == costmodel.ChoosePFFT && got != BackendPFFT) ||
		(want == costmodel.ChooseDense && got != BackendDense) {
		t.Errorf("auto chose %v, cost model recommends %v", got, want)
	}
	if got == BackendDense {
		t.Errorf("auto stayed dense above the cutoff (N=%d)", big.N())
	}
}

// TestTabulatedOperatorMatchesExact validates the tabulated-near-field
// adapter: the operator built with collocation-table near entries must
// agree with the exact fmm operator to within the table's interpolation
// error on a full solve.
func TestTabulatedOperatorMatchesExact(t *testing.T) {
	spec := busSpec(t, 3, 3, 1e-6).withDefaults()
	exact, err := New(spec, Options{Backend: BackendFMM, Tol: 1e-6, FMM: &fmm.Options{Theta: 0.35}})
	if err != nil {
		t.Fatal(err)
	}
	eres, err := exact.Extract()
	if err != nil {
		t.Fatal(err)
	}

	tabOp := NewTabulated(spec.Panels, testCollocation(t), fmm.Options{Theta: 0.35, Eps: spec.Eps, Cfg: spec.Cfg})
	pl, err := NewWithOperator(spec, tabOp, Options{Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pl.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if d := capDiff(res, eres); d > 0.02 {
		t.Errorf("tabulated near field deviates from exact by %g", d)
	}
}
