// Capx is the command-line field solver: it builds one of the benchmark
// structures (or a parameterized variant), runs capacitance extraction
// with the selected backend, and prints the Maxwell capacitance matrix and
// the timing breakdown.
//
// Usage examples:
//
//	capx -structure crossing
//	capx -structure bus -m 24 -n 24 -backend shared -workers 4
//	capx -structure interconnect -backend mpi -workers 10 -accel
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"parbem"
)

func main() {
	var (
		structure = flag.String("structure", "crossing", "crossing | bus | interconnect | plates")
		input     = flag.String("input", "", "read structure from a geometry file instead")
		m         = flag.Int("m", 8, "bus: lower-layer wire count")
		n         = flag.Int("n", 8, "bus: upper-layer wire count")
		backend   = flag.String("backend", "serial", "serial | shared | mpi")
		workers   = flag.Int("workers", 4, "parallel nodes D")
		accel     = flag.Bool("accel", false, "enable tabulated elementary functions (Section 4.2.3)")
		units     = flag.Float64("unit", 1e15, "output scale (1e15 = fF)")
		maxPrint  = flag.Int("maxprint", 12, "largest matrix printed in full")
		spice     = flag.String("spice", "", "also write a SPICE netlist to this file")
		check     = flag.Bool("check", true, "validate the Maxwell matrix structure")
	)
	flag.Parse()

	var st *parbem.Structure
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			log.Fatal(ferr)
		}
		st, err = parbem.ReadStructure(f)
		f.Close()
	} else {
		st, err = buildStructure(*structure, *m, *n)
	}
	if err != nil {
		log.Fatal(err)
	}

	opt := parbem.Options{Workers: *workers}
	switch *backend {
	case "serial":
		opt.Backend = parbem.Serial
	case "shared":
		opt.Backend = parbem.SharedMem
	case "mpi":
		opt.Backend = parbem.Distributed
	default:
		log.Fatalf("unknown backend %q", *backend)
	}
	if *accel {
		opt.Kernel = parbem.FastKernelConfig()
	}

	res, err := parbem.Extract(st, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("structure : %s (%d conductors)\n", st.Name, st.NumConductors())
	fmt.Printf("backend   : %v, D = %d, accel = %v\n", opt.Backend, *workers, *accel)
	fmt.Printf("basis     : N = %d functions, M = %d templates (M/N = %.2f)\n",
		res.N, res.M, float64(res.M)/float64(res.N))
	fmt.Printf("memory    : %.1f KB system matrix\n", float64(res.MatrixBytes)/1024)
	fmt.Printf("timing    : basis %v | setup %v | solve %v | total %v\n",
		res.Timing.BasisGen, res.Timing.Setup, res.Timing.Solve, res.Timing.Total)
	fmt.Printf("setup %%   : %.1f%%\n\n",
		100*float64(res.Timing.Setup)/float64(res.Timing.Total))

	names := make([]string, st.NumConductors())
	for i, c := range st.Conductors {
		names[i] = c.Name
	}

	if *check {
		if violations := parbem.CheckMaxwell(res.C, 0); len(violations) > 0 {
			fmt.Println("Maxwell-matrix warnings:")
			for _, v := range violations {
				fmt.Printf("  %s\n", v)
			}
			fmt.Println()
		}
	}

	if *spice != "" {
		f, err := os.Create(*spice)
		if err != nil {
			log.Fatal(err)
		}
		if err := parbem.WriteSpice(f, res.C, names, 1e-20); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("netlist   : %s\n\n", *spice)
	}

	nc := res.C.Rows
	if nc <= *maxPrint {
		fmt.Println("capacitance matrix (scaled):")
		fmt.Print(parbem.FormatMatrix(res.C, *units, names))
	} else {
		fmt.Printf("capacitance matrix is %dx%d; printing diagonal and strongest coupling per row\n", nc, nc)
		for i := 0; i < nc; i++ {
			best, bj := 0.0, -1
			for j := 0; j < nc; j++ {
				if j != i && -res.C.At(i, j) > best {
					best, bj = -res.C.At(i, j), j
				}
			}
			fmt.Printf("C[%3d][%3d] = %10.4f   strongest coupling -> %3d: %10.4f\n",
				i, i, res.C.At(i, i)**units, bj, best**units)
		}
	}
}

func buildStructure(kind string, m, n int) (*parbem.Structure, error) {
	switch kind {
	case "crossing":
		return parbem.NewCrossingPair().Build(), nil
	case "bus":
		return parbem.NewBus(m, n).Build(), nil
	case "interconnect":
		return parbem.NewInterconnect().Build(), nil
	case "plates":
		side, gap, thick := 20e-6, 0.5e-6, 0.2e-6
		return &parbem.Structure{
			Name: "plates",
			Conductors: []*parbem.Conductor{
				{Name: "bot", Boxes: []parbem.Box{parbem.NewBox(
					parbem.Vec3{X: 0, Y: 0, Z: 0},
					parbem.Vec3{X: side, Y: side, Z: thick})}},
				{Name: "top", Boxes: []parbem.Box{parbem.NewBox(
					parbem.Vec3{X: 0, Y: 0, Z: thick + gap},
					parbem.Vec3{X: side, Y: side, Z: 2*thick + gap})}},
			},
		}, nil
	}
	fmt.Fprintf(os.Stderr, "unknown structure %q\n", kind)
	return nil, fmt.Errorf("unknown structure %q", kind)
}
