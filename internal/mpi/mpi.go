// Package mpi is a small message-passing runtime that simulates a
// distributed-memory parallel system inside one process, in the spirit of
// the paper's own setup ("the distributed memory behavior is simulated by
// the operating system through MPI on a 2-processor-12-core machine",
// Section 5.2).
//
// Each rank runs as a goroutine with private state; ranks exchange only
// byte-serialized messages over per-pair ordered channels, so there is no
// hidden memory sharing on the data path. An optional cost model injects
// per-message latency and per-byte transfer time to emulate a slower
// interconnect.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"
)

// Message is one point-to-point transfer.
type Message struct {
	From, Tag int
	Data      []byte
}

// Network owns the channels connecting size ranks.
type Network struct {
	size int
	// queues[to][from] preserves per-pair ordering like MPI.
	queues [][]chan Message

	// Latency is added per message, InvBandwidth per payload byte, both
	// charged to the sender (eager-send model). Zero means an ideal
	// interconnect.
	Latency      time.Duration
	InvBandwidth time.Duration
}

// NewNetwork creates a network of the given size.
func NewNetwork(size int) *Network {
	if size < 1 {
		panic("mpi: network size must be >= 1")
	}
	n := &Network{size: size, queues: make([][]chan Message, size)}
	for to := 0; to < size; to++ {
		n.queues[to] = make([]chan Message, size)
		for from := 0; from < size; from++ {
			n.queues[to][from] = make(chan Message, 64)
		}
	}
	return n
}

// Comm returns the communicator for one rank.
func (n *Network) Comm(rank int) *Comm {
	if rank < 0 || rank >= n.size {
		panic(fmt.Sprintf("mpi: rank %d out of range", rank))
	}
	return &Comm{net: n, rank: rank}
}

// Run spawns fn on every rank of a fresh ideal network and waits for all
// ranks to return.
func Run(size int, fn func(c *Comm)) {
	RunOn(NewNetwork(size), fn)
}

// RunOn spawns fn on every rank of the given network and waits.
func RunOn(n *Network, fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < n.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(n.Comm(rank))
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's endpoint.
type Comm struct {
	net  *Network
	rank int
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.net.size }

// Send transmits data to rank `to` with a tag. The payload is copied, so
// the caller may reuse its buffer: ranks never share backing arrays.
func (c *Comm) Send(to, tag int, data []byte) {
	if cost := c.net.Latency + time.Duration(len(data))*c.net.InvBandwidth; cost > 0 {
		time.Sleep(cost)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.net.queues[to][c.rank] <- Message{From: c.rank, Tag: tag, Data: cp}
}

// Recv blocks for the next message from rank `from` and verifies its tag.
func (c *Comm) Recv(from, tag int) []byte {
	m := <-c.net.queues[c.rank][from]
	if m.Tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d",
			c.rank, tag, from, m.Tag))
	}
	return m.Data
}

// Float64 payload helpers (little-endian, like a real wire format).

// EncodeFloat64s serializes xs.
func EncodeFloat64s(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// DecodeFloat64s deserializes a float64 payload.
func DecodeFloat64s(b []byte) []float64 {
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}

// SendFloat64s sends a float64 slice.
func (c *Comm) SendFloat64s(to, tag int, xs []float64) {
	c.Send(to, tag, EncodeFloat64s(xs))
}

// RecvFloat64s receives a float64 slice.
func (c *Comm) RecvFloat64s(from, tag int) []float64 {
	return DecodeFloat64s(c.Recv(from, tag))
}

// SendInts sends an int slice (as int64 on the wire).
func (c *Comm) SendInts(to, tag int, xs []int) {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(int64(x)))
	}
	c.Send(to, tag, b)
}

// RecvInts receives an int slice.
func (c *Comm) RecvInts(from, tag int) []int {
	b := c.Recv(from, tag)
	xs := make([]int, len(b)/8)
	for i := range xs {
		xs[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return xs
}

// Reserved collective tags (outside the user range by convention).
const (
	tagBarrierIn  = -101
	tagBarrierOut = -102
	tagBcast      = -103
	tagReduce     = -104
)

// Barrier blocks until all ranks have entered (centralized at rank 0,
// implemented purely with messages).
func (c *Comm) Barrier() {
	if c.rank == 0 {
		for r := 1; r < c.Size(); r++ {
			c.Recv(r, tagBarrierIn)
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tagBarrierOut, nil)
		}
		return
	}
	c.Send(0, tagBarrierIn, nil)
	c.Recv(0, tagBarrierOut)
}

// BcastFloat64s broadcasts root's xs to all ranks, returning the local copy.
func (c *Comm) BcastFloat64s(root int, xs []float64) []float64 {
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.SendFloat64s(r, tagBcast, xs)
			}
		}
		return xs
	}
	return c.RecvFloat64s(root, tagBcast)
}

// ReduceSumFloat64s element-wise sums xs across ranks onto root; non-root
// ranks return nil.
func (c *Comm) ReduceSumFloat64s(root int, xs []float64) []float64 {
	if c.rank != root {
		c.SendFloat64s(root, tagReduce, xs)
		return nil
	}
	acc := make([]float64, len(xs))
	copy(acc, xs)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		part := c.RecvFloat64s(r, tagReduce)
		for i, v := range part {
			acc[i] += v
		}
	}
	return acc
}
