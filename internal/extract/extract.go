// Package extract implements the template-extraction pipeline that
// instantiable basis functions are built from (paper Section 2.2 and
// Figure 2, following reference [3]): the elementary crossing-wire problem
// is solved with a finely discretized piecewise-constant solver, the
// induced charge profile on the target wire's facing surface is measured,
// and the profile is decomposed into a constant flat shape plus reflected
// arch shapes whose amplitudes a(h), b(h) and decay lengths parameterize
// the template library.
package extract

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"parbem/internal/basis"
	"parbem/internal/fmm"
	"parbem/internal/geom"
	"parbem/internal/linalg"
	"parbem/internal/op"
	"parbem/internal/pcbem"
	"parbem/internal/plan"
)

// iterativeThreshold is the panel count above which the elementary
// crossing problem is solved with the multipole-accelerated iterative
// path instead of the O(N^3) dense factorization. Below it the dense
// solve is both faster and exact; above it the accelerated path cuts the
// cold-start template-build cost from cubic to near-linear.
const iterativeThreshold = 1500

// iterativeTol is the GMRES tolerance of the accelerated template
// solves: 100x tighter than the capacitance baselines' 1e-4, because the
// extracted arch shapes are differences of nearby densities.
const iterativeTol = 1e-6

// solveCrossing solves a panelized crossing problem with the fastest
// applicable method. Above iterativeThreshold panels it runs the unified
// pipeline on the list-based multipole operator with a conservative
// opening parameter, the near-field block-Jacobi preconditioner and a
// tight tolerance; if that solve fails to converge (the accuracy guard),
// it falls back to the dense direct solve rather than return a degraded
// profile.
func solveCrossing(prob *pcbem.Problem) (*pcbem.Result, error) {
	if prob.N() < iterativeThreshold {
		return prob.SolveDense()
	}
	// Workers: 1 — parallelism comes from the layers above (SweepH runs
	// GOMAXPROCS h-points concurrently and the pipeline one GMRES per
	// conductor); a parallel operator here would oversubscribe ~P^2.
	res, err := prob.SolvePipeline(op.Options{
		Backend: op.BackendFMM,
		Precond: op.PrecondBlockJacobi,
		Tol:     iterativeTol,
		FMM:     &fmm.Options{Theta: 0.3, NearFactor: 2, Workers: 1},
	})
	if err == nil {
		return res, nil
	}
	return prob.SolveDense()
}

// Profile is the width-averaged charge density on the target wire's top
// face as a function of the coordinate along the wire.
type Profile struct {
	U   []float64 // bin centers along the wire (m), sorted
	Rho []float64 // width-averaged charge density (C/m^2) per bin
}

// CrossingProfile solves the elementary problem of a crossing pair with the
// source (upper) wire at 1 V and the target (lower) wire grounded, and
// returns the induced charge profile on the target's top face.
func CrossingProfile(sp geom.CrossingPairSpec, maxEdge float64) (*Profile, error) {
	st := sp.Build()
	prob, err := pcbem.NewProblem(st, maxEdge)
	if err != nil {
		return nil, err
	}
	res, err := solveCrossing(prob)
	if err != nil {
		return nil, err
	}
	return profileFrom(sp, prob.Panels, res.Rho)
}

// profileFrom bins a solved charge density into the width-averaged
// profile on the target wire's top face (excitation column 1: source
// conductor at 1 V).
func profileFrom(sp geom.CrossingPairSpec, panels []geom.Panel, rho *linalg.Dense) (*Profile, error) {
	topZ := sp.Thickness / 2 // top face of the bottom wire
	type bin struct {
		area, charge float64
	}
	bins := map[float64]*bin{}
	for i, pan := range panels {
		if pan.Conductor != 0 || pan.Normal != geom.Z || pan.Offset != topZ {
			continue
		}
		// Top face of the bottom wire: U axis is X (along the wire).
		u := pan.U.Mid()
		b := bins[u]
		if b == nil {
			b = &bin{}
			bins[u] = b
		}
		a := pan.Area()
		b.area += a
		b.charge += rho.At(i, 1) * a
	}
	if len(bins) == 0 {
		return nil, errors.New("extract: no panels found on the target top face")
	}
	p := &Profile{}
	for u := range bins {
		p.U = append(p.U, u)
	}
	sort.Float64s(p.U)
	p.Rho = make([]float64, len(p.U))
	for i, u := range p.U {
		b := bins[u]
		p.Rho[i] = b.charge / b.area
	}
	return p, nil
}

// ArchFit summarizes the flat + arch decomposition of a crossing profile
// (paper Figure 2's annotations).
type ArchFit struct {
	Flat    float64 // a(h): plateau density magnitude far from the crossing
	Peak    float64 // b(h): peak density magnitude in the crossing region
	PeakPos float64 // position of the peak along the wire
	// Decay is the 1/e length of the induced bump beyond the shadow
	// edge (the "extension length" scale).
	Decay float64
}

// FitArch decomposes a profile measured for crossing spec sp. The flat
// level is the median density over the outer thirds of the wire; the arch
// peak is the extremal density within the crossing region; the decay
// length is fitted from the residual's fall-off beyond the shadow edge.
func FitArch(p *Profile, sp geom.CrossingPairSpec) (*ArchFit, error) {
	n := len(p.U)
	if n < 8 {
		return nil, errors.New("extract: profile too coarse to fit")
	}
	span := p.U[n-1] - p.U[0]
	// Outer-third plateau.
	var outer []float64
	for i, u := range p.U {
		if math.Abs(u) > span/3 {
			outer = append(outer, p.Rho[i])
		}
	}
	if len(outer) == 0 {
		return nil, errors.New("extract: wire too short relative to crossing")
	}
	sort.Float64s(outer)
	flat := outer[len(outer)/2]

	// Peak within the shadow (|u| <= w/2) plus one gap length.
	half := sp.Width/2 + sp.H
	peak, peakPos := flat, 0.0
	for i, u := range p.U {
		if math.Abs(u) <= half && math.Abs(p.Rho[i]) > math.Abs(peak) {
			peak, peakPos = p.Rho[i], u
		}
	}

	// Decay fit: residual |rho - flat| from the shadow edge outward,
	// least-squares on log residual.
	edge := sp.Width / 2
	var xs, ys []float64
	for i, u := range p.U {
		d := math.Abs(u) - edge
		if d <= 0 || d > 6*sp.H {
			continue
		}
		r := math.Abs(p.Rho[i] - flat)
		if r <= 0 {
			continue
		}
		xs = append(xs, d)
		ys = append(ys, math.Log(r))
	}
	decay := sp.H // fallback: the physical scale
	if len(xs) >= 3 {
		// Linear fit ys = c0 - x/lambda.
		var sx, sy, sxx, sxy float64
		for i := range xs {
			sx += xs[i]
			sy += ys[i]
			sxx += xs[i] * xs[i]
			sxy += xs[i] * ys[i]
		}
		nf := float64(len(xs))
		slope := (nf*sxy - sx*sy) / (nf*sxx - sx*sx)
		if slope < 0 {
			decay = -1 / slope
		}
	}
	return &ArchFit{Flat: flat, Peak: peak, PeakPos: peakPos, Decay: decay}, nil
}

// ShapeFromProfile tabulates the residual arch shape over [edge-li,
// edge+le] (one side of the crossing), normalized to peak 1, for use as a
// basis.TabulatedShape.
func ShapeFromProfile(p *Profile, fit *ArchFit, sp geom.CrossingPairSpec, samples int) basis.TabulatedShape {
	if samples < 2 {
		samples = 32
	}
	edge := sp.Width / 2
	li := math.Min(1.5*sp.H, sp.Width/2)
	le := 2 * sp.H
	lo, hi := edge-li, edge+le
	out := make([]float64, samples)
	maxAbs := 0.0
	for i := 0; i < samples; i++ {
		u := lo + (hi-lo)*float64(i)/float64(samples-1)
		r := interp(p, u) - fit.Flat
		out[i] = r
		if a := math.Abs(r); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0 {
		for i := range out {
			out[i] = math.Abs(out[i]) / maxAbs
		}
	}
	return basis.TabulatedShape{Samples: out}
}

// interp linearly interpolates the profile at u.
func interp(p *Profile, u float64) float64 {
	n := len(p.U)
	if u <= p.U[0] {
		return p.Rho[0]
	}
	if u >= p.U[n-1] {
		return p.Rho[n-1]
	}
	i := sort.SearchFloat64s(p.U, u)
	if i == 0 {
		return p.Rho[0]
	}
	t := (u - p.U[i-1]) / (p.U[i] - p.U[i-1])
	return p.Rho[i-1]*(1-t) + p.Rho[i]*t
}

// PointError records the failure of one sweep point, tagged with the
// separation it belongs to.
type PointError struct {
	H   float64
	Err error
}

// Error implements the error interface.
func (e *PointError) Error() string {
	return fmt.Sprintf("extract: sweep point h=%g: %v", e.H, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *PointError) Unwrap() error { return e.Err }

// PointErrors decomposes a SweepH error into its per-point failures.
// SweepH joins one PointError per failed separation (errors.Join); a
// caller reporting point-by-point — the extraction service streaming a
// sweep — needs every component, not just the first errors.As match.
// Non-PointError components (there are none today) are dropped; a nil
// error yields nil.
func PointErrors(err error) []*PointError {
	var out []*PointError
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if pe, ok := e.(*PointError); ok {
			out = append(out, pe)
			return
		}
		switch u := e.(type) {
		case interface{ Unwrap() []error }:
			for _, c := range u.Unwrap() {
				walk(c)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	return out
}

// SweepH runs the extraction over a set of separations h and returns the
// fitted a(h), b(h) magnitudes — the parameter vectors p of the
// instantiable template library.
//
// The h-points are geometry variants of one structure, so the sweep
// runs on staged extraction plans (internal/plan): points are processed
// in h order, sharded into GOMAXPROCS contiguous chunks, one plan per
// chunk — adjacent separations reuse each other's near-field integrals,
// factorizations and charge solutions, cutting per-point cost several
// times over independent solves (BenchmarkSweepIncremental).
//
// Failing points no longer abort the sweep: every error is collected as
// a PointError carrying its h value and returned joined, with fits[i]
// nil exactly for the failed points — callers keep the healthy part of
// the sweep.
func SweepH(base geom.CrossingPairSpec, hs []float64, maxEdge float64) ([]*ArchFit, error) {
	return SweepHWorkers(base, hs, maxEdge, 0)
}

// SweepHWorkers is SweepH with an explicit fan-out bound: at most
// workers point-solver goroutines run at once (0 = GOMAXPROCS). A
// service embedding the sweep passes its per-job worker budget (the
// engine's PlanWorkers) so template sweeps share the machine with the
// pool-budgeted pipeline jobs instead of oversubscribing it.
func SweepHWorkers(base geom.CrossingPairSpec, hs []float64, maxEdge float64, workers int) ([]*ArchFit, error) {
	fits := make([]*ArchFit, len(hs))
	errs := make([]error, len(hs))

	// Process in h order for maximal adjacent reuse; results map back
	// through the index permutation.
	order := make([]int, len(hs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return hs[order[a]] < hs[order[b]] })

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(hs) {
		workers = len(hs)
	}
	if workers < 1 {
		workers = 1
	}
	// The panel count — and hence the method selection — is the same
	// for every point (only positions vary with h), so resolve the plan
	// options once, not per worker.
	popt := crossingPlanOptions(base, maxEdge)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(hs) / workers
		hi := (w + 1) * len(hs) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(chunk []int) {
			defer wg.Done()
			p, err := plan.New(plan.Options{MaxEdge: maxEdge, Pipeline: popt})
			if err != nil {
				p = nil // degrade to independent per-point solves
			}
			for _, i := range chunk {
				sp := base
				sp.H = hs[i]
				fits[i], errs[i] = sweepPoint(p, sp, maxEdge)
			}
		}(order[lo:hi])
	}
	wg.Wait()

	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, &PointError{H: hs[i], Err: err})
		}
	}
	return fits, errors.Join(joined...)
}

// crossingPlanOptions resolves solveCrossing's method selection for the
// sweep's panel count: dense direct below the iterative threshold, the
// conservative multipole configuration above it.
func crossingPlanOptions(base geom.CrossingPairSpec, maxEdge float64) op.Options {
	if len(base.Build().Panelize(maxEdge)) < iterativeThreshold {
		return op.Options{Backend: op.BackendDense, Direct: true}
	}
	return op.Options{
		Backend: op.BackendFMM,
		Precond: op.PrecondBlockJacobi,
		Tol:     iterativeTol,
		FMM:     &fmm.Options{Theta: 0.3, NearFactor: 2, Workers: 1},
	}
}

// sweepPoint extracts and fits one h-point, preferring the shared plan
// and falling back to an independent solve on a plan solve failure (the
// accuracy guard of solveCrossing, preserved under reuse). Profile
// binning errors are deterministic in the panelization and would repeat
// identically on the fallback, so they return directly.
func sweepPoint(p *plan.Plan, sp geom.CrossingPairSpec, maxEdge float64) (*ArchFit, error) {
	if p != nil {
		if res, err := p.Extract(sp.Build()); err == nil {
			prof, err := profileFrom(sp, res.Panels, res.Rho)
			if err != nil {
				return nil, err
			}
			return FitArch(prof, sp)
		}
	}
	prof, err := CrossingProfile(sp, maxEdge)
	if err != nil {
		return nil, err
	}
	return FitArch(prof, sp)
}
