package tabulate

import (
	"fmt"
	"math"

	"parbem/internal/geom"
	"parbem/internal/kernel"
)

// CollocationSpec sizes the normalized rectangle-collocation table.
type CollocationSpec struct {
	// AspectMin is the smallest tabulated aspect ratio short/long side;
	// thinner rectangles fall back to the closed form. Default 1/8.
	AspectMin float64
	// Range is the largest |coordinate| (in units of the long side)
	// covered around the rectangle. Default 4 — beyond it the evaluation
	// falls back to the closed form (far pairs never reach the table at
	// all: the approximation-distance dispatch short-circuits them
	// first, which is what keeps the domain small enough to tabulate;
	// paper Section 4.2.1).
	Range float64
	// ZGate rejects evaluation points closer to the rectangle plane than
	// this (normalized): the potential kinks across the plane, where
	// multilinear interpolation is weakest. Default 0.15.
	ZGate float64
	// NH, NX, NY, NZ are the grid sizes per dimension. Defaults
	// (8, 48, 48, 24) keep the interpolation error of the supported
	// domain below about one percent at a ~3 MB footprint.
	NH, NX, NY, NZ int
}

// withDefaults fills zero fields.
func (s CollocationSpec) withDefaults() CollocationSpec {
	if s.AspectMin == 0 {
		s.AspectMin = 1.0 / 8
	}
	if s.Range == 0 {
		s.Range = 4
	}
	if s.ZGate == 0 {
		s.ZGate = 0.15
	}
	if s.NH == 0 {
		s.NH = 8
	}
	if s.NX == 0 {
		s.NX = 48
	}
	if s.NY == 0 {
		s.NY = 48
	}
	if s.NZ == 0 {
		s.NZ = 24
	}
	return s
}

// Key returns a canonical cache key for the spec (used by the batch
// engine's table cache).
func (s CollocationSpec) Key() [8]float64 {
	s = s.withDefaults()
	return [8]float64{s.AspectMin, s.Range, s.ZGate,
		float64(s.NH), float64(s.NX), float64(s.NY), float64(s.NZ), 0}
}

// Validate rejects specs the table builder cannot tabulate (it would
// panic): non-positive domain parameters or grid dimensions of fewer
// than two points. Zero fields are fine — they take defaults.
func (s CollocationSpec) Validate() error {
	d := s.withDefaults()
	if d.AspectMin <= 0 || d.AspectMin > 1 {
		return fmt.Errorf("tabulate: AspectMin %g outside (0, 1]", d.AspectMin)
	}
	if d.Range <= 0 {
		return fmt.Errorf("tabulate: Range %g must be positive", d.Range)
	}
	if d.ZGate < 0 || d.ZGate > d.Range {
		return fmt.Errorf("tabulate: ZGate %g outside [0, Range]", d.ZGate)
	}
	for _, n := range [...]struct {
		name string
		v    int
	}{{"NH", d.NH}, {"NX", d.NX}, {"NY", d.NY}, {"NZ", d.NZ}} {
		if n.v < 2 {
			return fmt.Errorf("tabulate: grid size %s = %d, need >= 2", n.name, n.v)
		}
	}
	return nil
}

// Fingerprint hashes the spec into a single word; two tables with equal
// fingerprints interpolate the same grid. The pair-integral cache folds
// it into its keys so values computed under different tables (or none)
// never alias.
func (s CollocationSpec) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	for _, f := range s.Key() {
		h ^= math.Float64bits(f)
		h *= 1099511628211
	}
	return h
}

// Fingerprint returns the built table's spec fingerprint.
func (c *Collocation) Fingerprint() uint64 { return c.spec.Fingerprint() }

// Collocation is the direct tabulation (paper Section 4.2.1) of the
// rectangle collocation potential
//
//	g(h, x, y, z) = int_0^1 int_0^h 1 / |(x,y,z) - (x',y',0)| dy' dx'
//
// in coordinates normalized by the rectangle's long side. One table
// serves every rectangle-point pair whose normalized parameters fall in
// the tabulated domain: the general evaluation translates, permutes and
// mirrors the query onto the canonical octant (x <= 1/2, y <= h/2,
// z >= 0) and scales the result by the long side. Out-of-domain queries
// report ok = false and the caller falls back to the closed form, so the
// table is a pure acceleration with bounded, testable interpolation
// error.
type Collocation struct {
	spec CollocationSpec
	tab  *Table
}

// NewCollocation builds the table (prod of grid sizes closed-form kernel
// evaluations; the batch engine caches the result across extractions).
func NewCollocation(spec CollocationSpec) *Collocation {
	s := spec.withDefaults()
	dims := []Dim{
		{Min: s.AspectMin, Max: 1, N: s.NH},
		{Min: -s.Range, Max: 0.5, N: s.NX},
		{Min: -s.Range, Max: 0.5, N: s.NY},
		{Min: 0, Max: s.Range, N: s.NZ},
	}
	t := Build(dims, func(p []float64) float64 {
		return kernel.RectPotential(kernel.StdOps, 0, 1, 0, p[0], p[1], p[2], p[3])
	})
	return &Collocation{spec: s, tab: t}
}

// Bytes returns the table memory footprint.
func (c *Collocation) Bytes() int { return c.tab.Bytes() }

// EvalCoords evaluates the collocation potential of the rectangle
// [u1,u2] x [v1,v2] (in its own plane coordinates) at the point
// (pu, pv, pz), pz measured from the plane. ok is false when the
// normalized query leaves the tabulated domain and the caller must use
// the closed form.
func (c *Collocation) EvalCoords(u1, u2, v1, v2, pu, pv, pz float64) (v float64, ok bool) {
	w := u2 - u1
	h := v2 - v1
	x := pu - u1
	y := pv - v1
	if h > w {
		// Canonical orientation: U is the long side (the integral is
		// symmetric under swapping the two in-plane axes).
		w, h = h, w
		x, y = y, x
	}
	if w <= 0 {
		return 0, false
	}
	inv := 1 / w
	hn := h * inv
	if hn < c.spec.AspectMin {
		return 0, false
	}
	x *= inv
	y *= inv
	z := math.Abs(pz) * inv
	if z < c.spec.ZGate {
		return 0, false
	}
	// Mirror onto the canonical octant: the potential is symmetric about
	// the rectangle's in-plane center lines.
	if x > 0.5 {
		x = 1 - x
	}
	if y > 0.5*hn {
		y = hn - y
	}
	r := c.spec.Range
	if x < -r || y < -r || z > r {
		return 0, false
	}
	return w * c.tab.Eval4(hn, x, y, z), true
}

// EvalRect evaluates the collocation potential of rectangle s at point p
// (the tabulated counterpart of kernel.RectCollocation without the
// far-field dispatch, which callers apply first).
func (c *Collocation) EvalRect(s geom.Rect, p geom.Vec3) (float64, bool) {
	pu := p.Component(s.UAxis())
	pv := p.Component(s.VAxis())
	pz := p.Component(s.Normal) - s.Offset
	return c.EvalCoords(s.U.Lo, s.U.Hi, s.V.Lo, s.V.Hi, pu, pv, pz)
}
