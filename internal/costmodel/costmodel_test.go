package costmodel

import (
	"math"
	"testing"
)

func TestAnchorsReproduced(t *testing.T) {
	cases := []struct {
		m Model
		d int
		e float64
	}{
		{ParallelPFFT, 8, 0.42},
		{ParallelFMM, 8, 0.65},
		{ThisWorkOpenMP, 4, 0.91},
		{ThisWorkMPI, 10, 0.89},
	}
	for _, c := range cases {
		if got := c.m.Efficiency(c.d); math.Abs(got-c.e) > 1e-12 {
			t.Errorf("%s: E(%d) = %g want %g", c.m.Name, c.d, got, c.e)
		}
	}
}

func TestEfficiencyMonotoneDecreasing(t *testing.T) {
	for _, m := range []Model{ParallelPFFT, ParallelFMM, ThisWorkOpenMP, ThisWorkMPI} {
		prev := 1.1
		for d := 1; d <= 16; d++ {
			e := m.Efficiency(d)
			if e <= 0 || e > 1 {
				t.Fatalf("%s: E(%d) = %g out of range", m.Name, d, e)
			}
			if e >= prev {
				t.Fatalf("%s: E not decreasing at %d", m.Name, d)
			}
			prev = e
		}
	}
}

func TestOrderingMatchesFigure8(t *testing.T) {
	// At every node count >= 2: this-work curves above FMM above pFFT.
	for d := 2; d <= 10; d++ {
		omp := ThisWorkOpenMP.Efficiency(d)
		mpi := ThisWorkMPI.Efficiency(d)
		fmm := ParallelFMM.Efficiency(d)
		pfft := ParallelPFFT.Efficiency(d)
		if !(omp > fmm && mpi > fmm && fmm > pfft) {
			t.Fatalf("d=%d: ordering broken: omp=%.3f mpi=%.3f fmm=%.3f pfft=%.3f",
				d, omp, mpi, fmm, pfft)
		}
	}
}

func TestSpeedupAndCurve(t *testing.T) {
	m := ThisWorkMPI
	if s := m.Speedup(1); s != 1 {
		t.Errorf("Speedup(1) = %g", s)
	}
	c := m.Curve(10)
	if len(c) != 10 || c[0] != 1 {
		t.Errorf("Curve = %v", c)
	}
	// Paper Table 3: MPI speedup 8.91x at 10 nodes.
	if s := m.Speedup(10); math.Abs(s-8.9) > 0.05 {
		t.Errorf("Speedup(10) = %g, want ~8.9", s)
	}
}

func TestCalibrateGammaEdgeCases(t *testing.T) {
	if CalibrateGamma(1, 0.5) != 0 || CalibrateGamma(8, 0) != 0 || CalibrateGamma(8, 1) != 0 {
		t.Error("edge cases should return 0")
	}
}
