package geom

import "fmt"

// Conductor is a named conductor built from one or more axis-aligned boxes
// (e.g. a routed wire with vias). All boxes of a conductor are held at the
// same potential during extraction.
type Conductor struct {
	Name  string
	Boxes []Box
}

// Faces returns all exterior rectangular faces of the conductor's boxes.
// Faces of distinct boxes are not merged; interior (abutting) faces are kept
// since they carry negligible charge and simplify the generators. Use
// Structure.Panelize for discretization.
func (c *Conductor) Faces() []Rect {
	out := make([]Rect, 0, 6*len(c.Boxes))
	for _, b := range c.Boxes {
		fs := b.Faces()
		out = append(out, fs[:]...)
	}
	return out
}

// Structure is a complete n-conductor extraction problem.
type Structure struct {
	Name       string
	Conductors []*Conductor
}

// NumConductors returns the number of conductors.
func (s *Structure) NumConductors() int { return len(s.Conductors) }

// TotalFaces returns the total face count over all conductors.
func (s *Structure) TotalFaces() int {
	n := 0
	for _, c := range s.Conductors {
		n += 6 * len(c.Boxes)
	}
	return n
}

// Panel is a discretization unit: a rectangle tagged with the conductor it
// belongs to.
type Panel struct {
	Rect
	Conductor int // index into Structure.Conductors
}

// Panelize discretizes every conductor face into panels whose edge length
// does not exceed maxEdge (each face is split into a uniform grid). It is
// the discretization used by the piecewise-constant baselines.
func (s *Structure) Panelize(maxEdge float64) []Panel {
	p, _ := s.panelize(maxEdge, false)
	return p
}

// BoxRef identifies the conductor box a panel was generated from.
type BoxRef struct {
	Conductor, Box int32
}

// PanelizeProv is Panelize with provenance: prov[i] records the
// conductor box panel i was split from. The staged extraction plans
// (internal/plan) use it together with Diff to map panels 1:1 across
// geometry variants.
func (s *Structure) PanelizeProv(maxEdge float64) ([]Panel, []BoxRef) {
	return s.panelize(maxEdge, true)
}

// panelize generates the panels in deterministic conductor/box/face
// order, optionally recording provenance.
func (s *Structure) panelize(maxEdge float64, wantProv bool) ([]Panel, []BoxRef) {
	var out []Panel
	var prov []BoxRef
	var scratch []Rect
	for ci, c := range s.Conductors {
		for bi, b := range c.Boxes {
			fs := b.Faces()
			for _, f := range fs {
				nu := gridCount(f.U.Len(), maxEdge)
				nv := gridCount(f.V.Len(), maxEdge)
				scratch = f.SplitGrid(nu, nv, scratch[:0])
				for _, r := range scratch {
					out = append(out, Panel{Rect: r, Conductor: ci})
				}
				if wantProv {
					for range scratch {
						prov = append(prov, BoxRef{Conductor: int32(ci), Box: int32(bi)})
					}
				}
			}
		}
	}
	return out, prov
}

// gridCount returns how many segments of length <= maxEdge cover length.
func gridCount(length, maxEdge float64) int {
	if length <= 0 || maxEdge <= 0 {
		return 1
	}
	n := int(length/maxEdge + 0.999999)
	if n < 1 {
		n = 1
	}
	return n
}

// Validate checks basic well-formedness: non-empty conductors and
// positive-volume boxes. It returns the first problem found.
func (s *Structure) Validate() error {
	if len(s.Conductors) == 0 {
		return fmt.Errorf("geom: structure %q has no conductors", s.Name)
	}
	for ci, c := range s.Conductors {
		if len(c.Boxes) == 0 {
			return fmt.Errorf("geom: conductor %d (%q) has no boxes", ci, c.Name)
		}
		for bi, b := range c.Boxes {
			sz := b.Size()
			if sz.X <= 0 || sz.Y <= 0 || sz.Z <= 0 {
				return fmt.Errorf("geom: conductor %d (%q) box %d has non-positive size %v",
					ci, c.Name, bi, sz)
			}
		}
	}
	return nil
}
