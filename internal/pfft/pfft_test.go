package pfft

import (
	"math"
	"math/rand"
	"testing"

	"parbem/internal/geom"
	"parbem/internal/pcbem"
)

func busProblem(t *testing.T, m, n int, edge float64) *pcbem.Problem {
	t.Helper()
	st := geom.DefaultBus(m, n).Build()
	p, err := pcbem.NewProblem(st, edge)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOperatorMatchesDenseMatvec(t *testing.T) {
	p := busProblem(t, 2, 2, 1e-6)
	dense := p.AssembleDense()
	op := NewOperator(p.Panels, Options{})
	n := p.N()
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	dense.MulVec(want, x)
	got := make([]float64, n)
	op.Apply(got, x)
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	rel := math.Sqrt(num / den)
	if rel > 0.05 {
		t.Fatalf("pFFT matvec relative error %g > 5%%", rel)
	}
}

func TestSolveMatchesDense(t *testing.T) {
	p := busProblem(t, 2, 2, 1e-6)
	direct, err := p.SolveDense()
	if err != nil {
		t.Fatal(err)
	}
	op := NewOperator(p.Panels, Options{NearRadius: 4})
	iter, err := p.SolveIterative(op, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	nc := direct.C.Rows
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			a, b := direct.C.At(i, j), iter.C.At(i, j)
			if rel := math.Abs(a-b) / math.Abs(direct.C.At(i, i)); rel > 0.05 {
				t.Errorf("C[%d][%d]: dense %g pfft %g", i, j, a, b)
			}
		}
	}
}

func TestNearEntriesSparse(t *testing.T) {
	p := busProblem(t, 3, 3, 1e-6)
	op := NewOperator(p.Panels, Options{})
	n := p.N()
	if op.NearEntries() >= n*n/2 {
		t.Errorf("precorrection not sparse: %d of %d", op.NearEntries(), n*n)
	}
	nx, ny, nz := op.GridNodes()
	if nx < 2 || ny < 2 || nz < 2 {
		t.Errorf("degenerate grid %dx%dx%d", nx, ny, nz)
	}
}

func TestWorkerInvariance(t *testing.T) {
	p := busProblem(t, 2, 2, 1.5e-6)
	n := p.N()
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	op1 := NewOperator(p.Panels, Options{Workers: 1})
	op8 := NewOperator(p.Panels, Options{Workers: 8})
	a := make([]float64, n)
	b := make([]float64, n)
	op1.Apply(a, x)
	op8.Apply(b, x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-18 {
			t.Fatalf("worker-dependent result at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
