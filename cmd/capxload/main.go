// Capxload is the load harness for capxd: it drives the golden-corpus
// geometries (testdata/golden) at a configurable concurrency and
// reports the sustained request rate, latency percentiles and
// rejection rates the service holds under that load.
//
//	capxload -addr http://localhost:8437 -c 8 -d 30s
//	capxload -inprocess -c 4 -d 10s -workers 4 -budget 1
//
// Each worker loops over the corpus round-robin issuing synchronous
// POST /extract requests (optionally mixing in a variants sweep every
// -sweep-every requests); -timeout-ms attaches a per-request deadline
// and -tenant an X-Tenant header, so the daemon's QoS machinery —
// deadline_exceeded 504s, per-tenant 429s, queue_full backpressure —
// is exercised exactly as production traffic would. Rejections and
// deadline expiries are expected outcomes under saturation and are
// tallied, not treated as harness failures; transport errors and
// malformed responses are.
//
// With -inprocess the harness embeds a serve.Server over a loopback
// listener instead of dialing a daemon, giving CI a deterministic
// smoke run with no process orchestration.
//
// -replicas N (in-process only) embeds N servers instead of one, each
// with its own journal and artifact directory and the others as
// artifact peers, behind an embedded consistent-hash coordinator
// (capxd -route) — the whole replica-set topology in one process. The
// workers drive the coordinator, and the summary adds the aggregate
// cross-replica artifact traffic, so CI can smoke the peer-fetch and
// routing paths with zero orchestration.
//
// -chaos (in-process only) turns the run into a resilience smoke: a
// chaos goroutine drains, closes and reopens the embedded server on the
// same journal directory every -chaos-every while the workers keep
// firing. The client retries backpressure with the serve.RetryPolicy
// backoff, so a healthy run rides through every restart; the summary
// reports how many requests were retried, how many waits honored server
// Retry-After advice (tallied separately from failures), and how many
// restarts the load survived.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parbem/internal/serve"
)

// corpusCase is one golden-corpus geometry with its reference edge.
type corpusCase struct {
	name string
	geo  string
	edge float64
}

// loadCorpus reads every *.geo in dir, taking edge_m from the matching
// *.json reference.
func loadCorpus(dir string) ([]corpusCase, error) {
	geos, err := filepath.Glob(filepath.Join(dir, "*.geo"))
	if err != nil {
		return nil, err
	}
	sort.Strings(geos)
	var cases []corpusCase
	for _, g := range geos {
		text, err := os.ReadFile(g)
		if err != nil {
			return nil, err
		}
		ref := strings.TrimSuffix(g, ".geo") + ".json"
		raw, err := os.ReadFile(ref)
		if err != nil {
			return nil, fmt.Errorf("%s has no reference json: %w", g, err)
		}
		var meta struct {
			Name  string  `json:"name"`
			EdgeM float64 `json:"edge_m"`
		}
		if err := json.Unmarshal(raw, &meta); err != nil {
			return nil, fmt.Errorf("%s: %w", ref, err)
		}
		if meta.EdgeM <= 0 {
			return nil, fmt.Errorf("%s: missing edge_m", ref)
		}
		cases = append(cases, corpusCase{name: meta.Name, geo: string(text), edge: meta.EdgeM})
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("no *.geo cases under %s", dir)
	}
	return cases, nil
}

// tally accumulates one worker's outcomes; workers own their tally and
// the main goroutine merges after the barrier, so no locking.
type tally struct {
	ok        int
	rejected  int             // queue_full + rate_limited backpressure
	deadline  int             // deadline_exceeded (timeout_ms fired)
	failed    int             // everything else: transport errors, solver failures
	latencies []time.Duration // successful requests only
}

func (t *tally) merge(o *tally) {
	t.ok += o.ok
	t.rejected += o.rejected
	t.deadline += o.deadline
	t.failed += o.failed
	t.latencies = append(t.latencies, o.latencies...)
}

// classify books one request outcome.
func (t *tally) classify(err error, elapsed time.Duration) {
	if err == nil {
		t.ok++
		t.latencies = append(t.latencies, elapsed)
		return
	}
	var re *serve.RequestError
	if asRE(err, &re) {
		switch re.Code {
		case serve.CodeQueueFull, serve.CodeRateLimited,
			serve.CodeDraining, serve.CodeShuttingDown:
			// Backpressure, including a drain window the retry budget
			// could not outlast: expected under chaos, not a failure.
			t.rejected++
			return
		case serve.CodeDeadlineExceeded:
			t.deadline++
			return
		}
	}
	t.failed++
}

// asRE unwraps err to a *serve.RequestError.
func asRE(err error, re **serve.RequestError) bool {
	for err != nil {
		if r, ok := err.(*serve.RequestError); ok {
			*re = r
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// percentile returns the p-th percentile (0-100) of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}

// summary is the machine-readable report (-json).
type summary struct {
	Requests   int     `json:"requests"`
	DurationS  float64 `json:"duration_s"`
	ReqPerSec  float64 `json:"req_per_sec"`
	OK         int     `json:"ok"`
	Rejected   int     `json:"rejected"`
	Deadline   int     `json:"deadline_exceeded"`
	Failed     int     `json:"failed"`
	RejectRate float64 `json:"reject_rate"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MaxMs      float64 `json:"max_ms"`
	// Resilience tallies: backoff retries the client absorbed (not
	// failures), how many of those waits honored server Retry-After
	// advice, and how many chaos restarts the load rode through.
	Retried      int `json:"retried,omitempty"`
	HonoredWaits int `json:"honored_waits,omitempty"`
	Restarts     int `json:"restarts,omitempty"`
	// Replica-set tallies (-replicas > 1): aggregate artifact traffic
	// across the set and the coordinator's forwarding counters.
	Replicas        int    `json:"replicas,omitempty"`
	ArtifactLocal   uint64 `json:"artifact_local_hits,omitempty"`
	ArtifactPeer    uint64 `json:"artifact_peer_hits,omitempty"`
	ArtifactMisses  uint64 `json:"artifact_misses,omitempty"`
	RouterForwarded uint64 `json:"router_forwarded,omitempty"`
	RouterFailovers uint64 `json:"router_failovers,omitempty"`
}

// swapHandler lets the chaos loop replace the live server's handler
// atomically while the listener (and client connections) stay up. The
// handler is boxed so stores of different concrete handler types (a
// placeholder, then a mux) satisfy atomic.Value's consistency rule.
type swapHandler struct{ h atomic.Value }

type handlerBox struct{ h http.Handler }

func (s *swapHandler) set(h http.Handler) { s.h.Store(&handlerBox{h}) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(*handlerBox).h.ServeHTTP(w, r)
}

func main() {
	var (
		addr       = flag.String("addr", "", "capxd base URL (empty with -inprocess)")
		inproc     = flag.Bool("inprocess", false, "embed the server over a loopback listener instead of dialing -addr")
		corpus     = flag.String("corpus", "testdata/golden", "golden corpus directory")
		conc       = flag.Int("c", 4, "concurrent client workers")
		dur        = flag.Duration("d", 10*time.Second, "load duration")
		timeoutMs  = flag.Float64("timeout-ms", 0, "per-request timeout_ms (0 = none)")
		tenant     = flag.String("tenant", "", "X-Tenant header value")
		backend    = flag.String("backend", "", "backend selector (empty = auto)")
		sweepEvery = flag.Int("sweep-every", 0, "every Nth request per worker is a variants sweep (0 = extracts only)")
		jsonOut    = flag.Bool("json", false, "emit the summary as JSON")
		// in-process server shape
		workers = flag.Int("workers", 0, "in-process: engine pool size (0 = GOMAXPROCS)")
		budget  = flag.Int("budget", 0, "in-process: pool workers per job (0 = whole pool)")
		runners = flag.Int("runners", 0, "in-process: concurrent jobs (0 = derived)")
		queue   = flag.Int("queue", 64, "in-process: interactive queue depth")
		rate    = flag.Float64("tenant-rate", 0, "in-process: per-tenant requests/sec (0 = unlimited)")
		// chaos mode
		chaos      = flag.Bool("chaos", false, "in-process: drain and restart the embedded server mid-load (resilience smoke)")
		chaosEvery = flag.Duration("chaos-every", 2*time.Second, "in-process: interval between chaos restarts")
		dataDir    = flag.String("data-dir", "", "in-process: journal directory (-chaos default: a temp dir)")
		replicas   = flag.Int("replicas", 1, "in-process: embed N replicas behind a consistent-hash coordinator")
	)
	flag.Parse()
	if *chaos && !*inproc {
		log.Fatal("capxload: -chaos requires -inprocess")
	}
	if *replicas > 1 && !*inproc {
		log.Fatal("capxload: -replicas requires -inprocess")
	}
	if *replicas > 1 && *chaos {
		log.Fatal("capxload: -chaos and -replicas are mutually exclusive")
	}

	cases, err := loadCorpus(*corpus)
	if err != nil {
		log.Fatalf("capxload: %v", err)
	}

	base := *addr
	var (
		inOpts serve.Options
		inSrv  *serve.Server
		sw     *swapHandler
		// replica-set mode
		replicaSrvs []*serve.Server
		router      *serve.Router
	)
	if *inproc && *replicas > 1 {
		// Listeners first (their URLs seed each replica's peer list and
		// the ring), handlers swapped in once the servers exist.
		sws := make([]*swapHandler, *replicas)
		urls := make([]string, *replicas)
		for i := range sws {
			sws[i] = &swapHandler{}
			sws[i].set(http.NotFoundHandler())
			ts := httptest.NewServer(sws[i])
			defer ts.Close()
			urls[i] = ts.URL
		}
		for i := 0; i < *replicas; i++ {
			dir, err := os.MkdirTemp("", fmt.Sprintf("capxload-replica%d-", i))
			if err != nil {
				log.Fatalf("capxload: %v", err)
			}
			defer os.RemoveAll(dir)
			var peers []string
			for j, u := range urls {
				if j != i {
					peers = append(peers, u)
				}
			}
			s, err := serve.Open(serve.Options{
				Workers: *workers, WorkerBudget: *budget,
				Runners: *runners, QueueDepth: *queue, TenantRate: *rate,
				DataDir:     dir,
				ArtifactDir: filepath.Join(dir, "artifacts"),
				Peers:       peers,
			})
			if err != nil {
				log.Fatalf("capxload: replica %d: %v", i, err)
			}
			defer s.Close()
			replicaSrvs = append(replicaSrvs, s)
			sws[i].set(s.Handler())
		}
		rt, err := serve.NewRouter(serve.RouterOptions{Replicas: urls})
		if err != nil {
			log.Fatalf("capxload: %v", err)
		}
		router = rt
		front := httptest.NewServer(rt.Handler())
		defer front.Close()
		base = front.URL
	} else if *inproc {
		inOpts = serve.Options{
			Workers: *workers, WorkerBudget: *budget,
			Runners: *runners, QueueDepth: *queue, TenantRate: *rate,
			DataDir: *dataDir,
		}
		if *chaos && inOpts.DataDir == "" {
			dir, err := os.MkdirTemp("", "capxload-chaos-")
			if err != nil {
				log.Fatalf("capxload: %v", err)
			}
			defer os.RemoveAll(dir)
			inOpts.DataDir = dir
		}
		s, err := serve.Open(inOpts)
		if err != nil {
			log.Fatalf("capxload: %v", err)
		}
		inSrv = s
		// The chaos loop swaps inSrv; close whichever is live at exit.
		defer func() { inSrv.Close() }()
		sw = &swapHandler{}
		sw.set(s.Handler())
		ts := httptest.NewServer(sw)
		defer ts.Close()
		base = ts.URL
	}
	if base == "" {
		log.Fatal("capxload: -addr or -inprocess required")
	}

	c := serve.NewClient(base)
	c.Tenant = *tenant
	var retried, honored atomic.Int64
	if *chaos {
		c.Retry = serve.DefaultRetry
	}
	c.OnRetry = func(attempt int, wait time.Duration, hon bool, err error) {
		retried.Add(1)
		if hon {
			honored.Add(1)
		}
	}
	if err := c.Health(context.Background()); err != nil {
		log.Fatalf("capxload: server not healthy: %v", err)
	}

	// Warm the engine caches once per case so the measured window
	// reflects steady-state serving, not first-touch plan builds.
	for _, cc := range cases {
		_, _ = c.Extract(context.Background(), &serve.ExtractRequest{
			Geometry: cc.geo, EdgeM: cc.edge, Backend: *backend,
		})
	}

	deadline := time.Now().Add(*dur)
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup
	restarts := 0
	if *chaos {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			tick := time.NewTicker(*chaosEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopChaos:
					return
				case <-tick.C:
				}
				// Drain (in-flight requests finish, new ones bounce with
				// 503 draining + Retry-After), close — compacting the
				// journal — and reopen on the same data dir. Requests
				// that land on the dead server's handler in the gap get
				// a retryable shutting_down rejection.
				if err := inSrv.Drain(10 * time.Second); err != nil {
					log.Printf("capxload: chaos drain: %v", err)
				}
				inSrv.Close()
				ns, err := serve.Open(inOpts)
				if err != nil {
					log.Fatalf("capxload: chaos reopen: %v", err)
				}
				inSrv = ns
				sw.set(ns.Handler())
				restarts++
			}
		}()
	}
	var next atomic.Uint64
	tallies := make([]tally, *conc)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(t *tally) {
			defer wg.Done()
			for n := 1; time.Now().Before(deadline); n++ {
				cc := cases[int(next.Add(1))%len(cases)]
				start := time.Now()
				var err error
				if *sweepEvery > 0 && n%*sweepEvery == 0 {
					_, err = c.Sweep(context.Background(), &serve.SweepRequest{
						Variants: []string{cc.geo}, EdgeM: cc.edge,
						Backend: *backend, TimeoutMs: *timeoutMs,
					}, nil)
				} else {
					_, err = c.Extract(context.Background(), &serve.ExtractRequest{
						Geometry: cc.geo, EdgeM: cc.edge,
						Backend: *backend, TimeoutMs: *timeoutMs,
					})
				}
				t.classify(err, time.Since(start))
			}
		}(&tallies[w])
	}
	wg.Wait()
	close(stopChaos)
	chaosWG.Wait()
	elapsed := time.Since(t0)

	var all tally
	for i := range tallies {
		all.merge(&tallies[i])
	}
	sort.Slice(all.latencies, func(i, j int) bool { return all.latencies[i] < all.latencies[j] })
	total := all.ok + all.rejected + all.deadline + all.failed
	sum := summary{
		Requests:  total,
		DurationS: elapsed.Seconds(),
		ReqPerSec: float64(total) / elapsed.Seconds(),
		OK:        all.ok, Rejected: all.rejected,
		Deadline: all.deadline, Failed: all.failed,
		P50Ms: percentile(all.latencies, 50).Seconds() * 1e3,
		P99Ms: percentile(all.latencies, 99).Seconds() * 1e3,
	}
	sum.Retried = int(retried.Load())
	sum.HonoredWaits = int(honored.Load())
	sum.Restarts = restarts
	if router != nil {
		sum.Replicas = len(replicaSrvs)
		rst := router.Stats()
		sum.RouterForwarded = rst.Forwarded
		sum.RouterFailovers = rst.Failovers
		for _, s := range replicaSrvs {
			if a := s.Stats().Artifacts; a != nil {
				sum.ArtifactLocal += a.LocalHits
				sum.ArtifactPeer += a.PeerHits
				sum.ArtifactMisses += a.Misses
			}
		}
	}
	if total > 0 {
		sum.RejectRate = float64(all.rejected) / float64(total)
	}
	if n := len(all.latencies); n > 0 {
		sum.MaxMs = all.latencies[n-1].Seconds() * 1e3
	}

	if *jsonOut {
		json.NewEncoder(os.Stdout).Encode(sum)
	} else {
		fmt.Printf("capxload: %d requests in %.1fs (%.1f req/s sustained, %d workers, %d corpus cases)\n",
			sum.Requests, sum.DurationS, sum.ReqPerSec, *conc, len(cases))
		fmt.Printf("  ok %d, rejected %d (%.1f%%), deadline_exceeded %d, failed %d\n",
			sum.OK, sum.Rejected, sum.RejectRate*100, sum.Deadline, sum.Failed)
		fmt.Printf("  latency ms: p50 %.2f  p99 %.2f  max %.2f\n", sum.P50Ms, sum.P99Ms, sum.MaxMs)
		if *chaos || sum.Retried > 0 {
			fmt.Printf("  resilience: %d retried (%d honored Retry-After), %d restarts survived\n",
				sum.Retried, sum.HonoredWaits, sum.Restarts)
		}
		if sum.Replicas > 0 {
			fmt.Printf("  replica set: %d replicas, %d forwarded (%d failovers), artifacts: %d local / %d peer hits, %d misses\n",
				sum.Replicas, sum.RouterForwarded, sum.RouterFailovers,
				sum.ArtifactLocal, sum.ArtifactPeer, sum.ArtifactMisses)
		}
	}
	// Saturation outcomes (rejections, deadline expiries) are data, not
	// failures; a harness run fails only when requests error outright
	// or nothing completed at all.
	if all.failed > 0 || all.ok == 0 {
		os.Exit(1)
	}
}
