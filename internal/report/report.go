// Package report post-processes extracted capacitance matrices: physical
// sanity checks on the Maxwell matrix, pretty-printing, and SPICE netlist
// emission for circuit back-annotation.
package report

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"parbem/internal/linalg"
)

// CheckMaxwell validates the structural properties of a Maxwell
// capacitance matrix: symmetry, positive diagonal, non-positive
// off-diagonal (up to tol relative slack for shielded near-zero couplings),
// and non-negative row sums (capacitance to infinity). It returns a list
// of violations (empty = clean).
func CheckMaxwell(c *linalg.Dense, tol float64) []string {
	var out []string
	if c.Rows != c.Cols {
		return []string{fmt.Sprintf("matrix is %dx%d, not square", c.Rows, c.Cols)}
	}
	if tol == 0 {
		tol = 0.02
	}
	// Scale for slack: largest diagonal entry.
	var scale float64
	for i := 0; i < c.Rows; i++ {
		if v := math.Abs(c.At(i, i)); v > scale {
			scale = v
		}
	}
	slack := tol * scale
	for i := 0; i < c.Rows; i++ {
		if c.At(i, i) <= 0 {
			out = append(out, fmt.Sprintf("C[%d][%d] = %g: diagonal not positive", i, i, c.At(i, i)))
		}
		var row float64
		for j := 0; j < c.Cols; j++ {
			row += c.At(i, j)
			if i == j {
				continue
			}
			if d := math.Abs(c.At(i, j) - c.At(j, i)); d > slack {
				out = append(out, fmt.Sprintf("C[%d][%d] asymmetric by %g", i, j, d))
			}
			if c.At(i, j) > slack {
				out = append(out, fmt.Sprintf("C[%d][%d] = %g: positive coupling", i, j, c.At(i, j)))
			}
		}
		if row < -slack {
			out = append(out, fmt.Sprintf("row %d sums to %g: negative capacitance to infinity", i, row))
		}
	}
	return out
}

// WriteSpice emits the capacitance matrix as a SPICE subcircuit: one
// grounded capacitor per conductor (its row sum) and one coupling
// capacitor per conductor pair (-C_ij), skipping elements below minCap
// farads. Node names default to n0, n1, ... when names is nil.
func WriteSpice(w io.Writer, c *linalg.Dense, names []string, minCap float64) error {
	bw := bufio.NewWriter(w)
	name := func(i int) string {
		if names != nil && i < len(names) && names[i] != "" {
			return sanitizeNode(names[i])
		}
		return fmt.Sprintf("n%d", i)
	}
	fmt.Fprintf(bw, "* capacitance netlist extracted by parbem\n")
	fmt.Fprintf(bw, ".subckt extracted")
	for i := 0; i < c.Rows; i++ {
		fmt.Fprintf(bw, " %s", name(i))
	}
	fmt.Fprintf(bw, "\n")
	idx := 1
	for i := 0; i < c.Rows; i++ {
		var row float64
		for j := 0; j < c.Cols; j++ {
			row += c.At(i, j)
		}
		if row > minCap {
			fmt.Fprintf(bw, "C%d %s 0 %.6g\n", idx, name(i), row)
			idx++
		}
	}
	for i := 0; i < c.Rows; i++ {
		for j := i + 1; j < c.Cols; j++ {
			cc := -c.At(i, j)
			if cc > minCap {
				fmt.Fprintf(bw, "C%d %s %s %.6g\n", idx, name(i), name(j), cc)
				idx++
			}
		}
	}
	fmt.Fprintf(bw, ".ends\n")
	return bw.Flush()
}

// FormatMatrix renders the matrix as aligned text with the given scale
// factor (e.g. 1e15 for femtofarads).
func FormatMatrix(c *linalg.Dense, scale float64, names []string) string {
	var sb strings.Builder
	name := func(i int) string {
		if names != nil && i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("c%d", i)
	}
	sb.WriteString(fmt.Sprintf("%-10s", ""))
	for j := 0; j < c.Cols; j++ {
		sb.WriteString(fmt.Sprintf("%12s", trunc(name(j), 11)))
	}
	sb.WriteString("\n")
	for i := 0; i < c.Rows; i++ {
		sb.WriteString(fmt.Sprintf("%-10s", trunc(name(i), 9)))
		for j := 0; j < c.Cols; j++ {
			sb.WriteString(fmt.Sprintf("%12.4f", c.At(i, j)*scale))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CapToInfinity returns the per-conductor row sums (capacitance to the
// environment).
func CapToInfinity(c *linalg.Dense) []float64 {
	out := make([]float64, c.Rows)
	for i := 0; i < c.Rows; i++ {
		var row float64
		for j := 0; j < c.Cols; j++ {
			row += c.At(i, j)
		}
		out[i] = row
	}
	return out
}

func sanitizeNode(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

func trunc(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
