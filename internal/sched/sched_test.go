package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// checkMap verifies that Map runs every task exactly once.
func checkMap(t *testing.T, ex Executor, n int) {
	t.Helper()
	counts := make([]int32, n)
	ex.Map(n, func(task int) {
		atomic.AddInt32(&counts[task], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestLocalRunsAllTasks(t *testing.T) {
	for _, d := range []int{1, 2, 4, 17} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			checkMap(t, Local(d), n)
		}
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 3, 50, 200} {
		checkMap(t, p, n)
	}
}

func TestPoolConcurrentJobs(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				p.Map(37, func(task int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 8*5*37 {
		t.Fatalf("ran %d tasks, want %d", got, 8*5*37)
	}
}

func TestPoolReusableAfterIdle(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	checkMap(t, p, 10)
	// The pool's workers are now asleep; a second job must wake them.
	checkMap(t, p, 10)
}

func TestStealing(t *testing.T) {
	// One slow task pinned to worker 0's deque must not serialize the
	// rest: with stealing, the other worker drains everything else.
	p := NewPool(2)
	defer p.Close()
	block := make(chan struct{})
	var fast atomic.Int64
	done := make(chan struct{})
	go func() {
		p.Map(20, func(task int) {
			if task == 0 {
				<-block
				return
			}
			fast.Add(1)
		})
		close(done)
	}()
	// All non-blocking tasks finish even though task 0 occupies a worker.
	for fast.Load() != 19 {
		runtime.Gosched()
	}
	close(block)
	<-done
}

func TestMapOnClosedPoolRunsInline(t *testing.T) {
	p := NewPool(2)
	p.Close()
	checkMap(t, p, 7)
}

func TestBudgetedRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, k := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			checkMap(t, Budgeted(p, k), n)
		}
	}
	// k <= 0 means no budget: the executor passes through unwrapped.
	if Budgeted(p, 0) != Executor(p) {
		t.Error("Budgeted(p, 0) did not return the pool unwrapped")
	}
}

// TestBudgetedCapsConcurrency asserts a Budgeted view never has more
// than k of its tasks in flight, even on a larger pool.
func TestBudgetedCapsConcurrency(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const k = 3
	var cur, peak atomic.Int64
	Budgeted(p, k).Map(64, func(int) {
		c := cur.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
	})
	if got := peak.Load(); got > k {
		t.Errorf("budget %d exceeded: peak concurrency %d", k, got)
	}
}

// TestBudgetedConcurrentRequests runs several budgeted Map calls at
// once over one shared pool (the service sharing pattern).
func TestBudgetedConcurrentRequests(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ran atomic.Int64
			Budgeted(p, 2).Map(40, func(int) { ran.Add(1) })
			if ran.Load() != 40 {
				t.Error("budgeted map lost tasks")
			}
		}()
	}
	wg.Wait()
}
