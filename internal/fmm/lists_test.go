package fmm

import (
	"math"
	"math/rand"
	"testing"

	"parbem/internal/sched"
)

// TestInteractionListsPartition is the structural invariant of the
// dual-tree traversal: for every target panel, the near CSR row plus the
// M2L lists of its leaf and all the leaf's ancestors must cover every
// source panel exactly once — nothing dropped, nothing double-counted.
func TestInteractionListsPartition(t *testing.T) {
	for _, tc := range []struct {
		m, n     int
		edge     float64
		leafSize int
		theta    float64
	}{
		{3, 3, 1.5e-6, 16, 0.5},
		{3, 3, 1.5e-6, 4, 0.5},
		{4, 4, 1e-6, 16, 0.8},
		{4, 4, 1e-6, 32, 0.3},
		{2, 2, 0.75e-6, 8, 0.5},
	} {
		panels := busPanels(t, tc.m, tc.n, tc.edge)
		op := NewOperator(panels, Options{
			LeafSize: tc.leafSize, Theta: tc.theta, Workers: 1,
		})
		n := len(panels)
		count := make([]int, n)
		for pi := 0; pi < n; pi++ {
			for i := range count {
				count[i] = 0
			}
			// Near sources from the CSR row.
			for _, pj := range op.nearIdx[op.nearOff[pi]:op.nearOff[pi+1]] {
				count[pj]++
			}
			// Far sources: subtree panels of every M2L source of the
			// leaf and its ancestors.
			for id := op.t.leafOf[pi]; id >= 0; id = op.t.nodes[id].parent {
				for _, src := range op.m2lSrc[op.m2lOff[id]:op.m2lOff[id+1]] {
					sn := &op.t.nodes[src]
					for _, pj := range op.t.perm[sn.lo:sn.hi] {
						count[pj]++
					}
				}
			}
			for pj, c := range count {
				if c != 1 {
					t.Fatalf("bus%dx%d leaf=%d theta=%g: target %d sees source %d %d times",
						tc.m, tc.n, tc.leafSize, tc.theta, pi, pj, c)
				}
			}
		}
	}
}

// TestFarFieldMatchesPointSum validates the M2L/L2L/L2P pipeline against
// the exact model it approximates: the near CSR row plus a brute-force
// point-charge sum over every non-near source.
func TestFarFieldMatchesPointSum(t *testing.T) {
	panels := busPanels(t, 8, 8, 0.75e-6)
	n := len(panels)
	op := NewOperator(panels, Options{Workers: 1})
	if len(op.m2lSrc) == 0 {
		t.Fatal("problem too small: no far field to validate")
	}
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	op.Apply(got, x)

	inNear := make([]bool, n)
	var num, den float64
	for i := 0; i < n; i++ {
		row := op.nearIdx[op.nearOff[i]:op.nearOff[i+1]]
		val := op.nearVal[op.nearOff[i]:op.nearOff[i+1]]
		var near float64
		for k, pj := range row {
			near += val[k] * x[pj]
			inNear[pj] = true
		}
		var far float64
		for j := 0; j < n; j++ {
			if inNear[j] {
				continue
			}
			far += x[j] * op.areas[j] / op.centers[i].Dist(op.centers[j])
		}
		for _, pj := range row {
			inNear[pj] = false
		}
		want := near + op.scale*op.areas[i]*far
		d := got[i] - want
		num += d * d
		den += want * want
	}
	if rel := math.Sqrt(num / den); rel > 0.01 {
		t.Fatalf("far field rel err %g > 1%%", rel)
	}
}

// TestApplyAllocFree proves the steady-state matvec allocates nothing in
// serial mode, and only constant scheduler bookkeeping when parallel.
func TestApplyAllocFree(t *testing.T) {
	panels := busPanels(t, 4, 4, 1e-6)
	n := len(panels)
	x := make([]float64, n)
	dst := make([]float64, n)
	for i := range x {
		x[i] = 1
	}

	serial := NewOperator(panels, Options{Workers: 1})
	serial.Apply(dst, x) // warm the scratch
	if allocs := testing.AllocsPerRun(10, func() {
		serial.Apply(dst, x)
	}); allocs != 0 {
		t.Fatalf("serial Apply allocates %.0f objects per call", allocs)
	}

	// Parallel mode: per-Map scheduler bookkeeping only, independent of
	// the panel count (the precedent bound of internal/par).
	pool := sched.NewPool(4)
	defer pool.Close()
	par := NewOperator(panels, Options{Pool: pool})
	par.Apply(dst, x)
	if allocs := testing.AllocsPerRun(10, func() {
		par.Apply(dst, x)
	}); allocs > 200 {
		t.Fatalf("pooled Apply allocates %.0f objects per call; kernel loops are no longer allocation-free", allocs)
	}
}

// TestConcurrentAppliesMatchSerial exercises the scratch overflow path:
// many goroutines applying the same operator concurrently must all get
// the bit-exact serial answer.
func TestConcurrentAppliesMatchSerial(t *testing.T) {
	panels := busPanels(t, 3, 3, 1.5e-6)
	n := len(panels)
	op := NewOperator(panels, Options{Workers: 1})
	rng := rand.New(rand.NewSource(5))
	const g = 8
	xs := make([][]float64, g)
	want := make([][]float64, g)
	for k := 0; k < g; k++ {
		xs[k] = make([]float64, n)
		for i := range xs[k] {
			xs[k][i] = rng.NormFloat64()
		}
		want[k] = make([]float64, n)
		op.Apply(want[k], xs[k])
	}
	got := make([][]float64, g)
	done := make(chan int, g)
	for k := 0; k < g; k++ {
		got[k] = make([]float64, n)
		go func(k int) {
			op.Apply(got[k], xs[k])
			done <- k
		}(k)
	}
	for k := 0; k < g; k++ {
		<-done
	}
	for k := 0; k < g; k++ {
		for i := range got[k] {
			if got[k][i] != want[k][i] {
				t.Fatalf("concurrent Apply %d differs at %d: %g vs %g",
					k, i, got[k][i], want[k][i])
			}
		}
	}
}
