package pcbem

import (
	"math"
	"testing"

	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
)

func plateStructure(side, gap, thick float64) *geom.Structure {
	return &geom.Structure{
		Name: "plates",
		Conductors: []*geom.Conductor{
			{Name: "bot", Boxes: []geom.Box{geom.NewBox(
				geom.Vec3{X: 0, Y: 0, Z: 0}, geom.Vec3{X: side, Y: side, Z: thick})}},
			{Name: "top", Boxes: []geom.Box{geom.NewBox(
				geom.Vec3{X: 0, Y: 0, Z: thick + gap}, geom.Vec3{X: side, Y: side, Z: 2*thick + gap})}},
		},
	}
}

func TestParallelPlateConvergence(t *testing.T) {
	side, gap := 10e-6, 1e-6
	ideal := kernel.Eps0 * side * side / gap
	var prev float64
	for i, maxEdge := range []float64{5e-6, 2.5e-6} {
		p, err := NewProblem(plateStructure(side, gap, 0.5e-6), maxEdge)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.SolveDense()
		if err != nil {
			t.Fatal(err)
		}
		c := -res.C.At(0, 1)
		ratio := c / ideal
		if ratio < 1.0 || ratio > 2.0 {
			t.Errorf("edge %g: C/ideal = %.3f outside [1, 2]", maxEdge, ratio)
		}
		if i > 0 {
			// Refinement must increase extracted coupling (better edge
			// resolution captures charge crowding).
			if c < prev*0.98 {
				t.Errorf("refinement reduced C: %g -> %g", prev, c)
			}
		}
		prev = c
	}
}

func TestDenseMatrixSPDAndSymmetric(t *testing.T) {
	p, err := NewProblem(geom.DefaultCrossingPair().Build(), 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	P := p.AssembleDense()
	if e := P.SymmetryError(); e > 0 {
		t.Errorf("symmetry error %g", e)
	}
	if _, err := linalg.NewCholesky(P); err != nil {
		t.Errorf("panel Galerkin matrix not SPD: %v", err)
	}
}

func TestIterativeMatchesDense(t *testing.T) {
	p, err := NewProblem(geom.DefaultCrossingPair().Build(), 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := p.SolveDense()
	if err != nil {
		t.Fatal(err)
	}
	iter, err := p.SolveIterative(p.DenseOp(), 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			a, b := direct.C.At(i, j), iter.C.At(i, j)
			if rel := math.Abs(a-b) / math.Abs(a); rel > 1e-5 {
				t.Errorf("C[%d][%d]: direct %g iterative %g", i, j, a, b)
			}
		}
	}
	if iter.Iterations <= 0 {
		t.Error("no iterations recorded")
	}
}

func TestChargeConservationSign(t *testing.T) {
	// With conductor 0 at 1V and conductor 1 grounded, panels on
	// conductor 0 carry net positive charge, conductor 1 net negative.
	p, err := NewProblem(geom.DefaultCrossingPair().Build(), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.SolveDense()
	if err != nil {
		t.Fatal(err)
	}
	var q0, q1 float64
	for i, pan := range p.Panels {
		q := res.Rho.At(i, 0) * pan.Area()
		if pan.Conductor == 0 {
			q0 += q
		} else {
			q1 += q
		}
	}
	if q0 <= 0 {
		t.Errorf("driven conductor net charge %g <= 0", q0)
	}
	if q1 >= 0 {
		t.Errorf("grounded conductor net charge %g >= 0", q1)
	}
	if math.Abs(q1) >= q0 {
		t.Errorf("induced |charge| %g exceeds source %g", q1, q0)
	}
}

func TestPanelCountGrowsWithRefinement(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	p1, _ := NewProblem(st, 2e-6)
	p2, _ := NewProblem(st, 0.5e-6)
	if p2.N() <= p1.N() {
		t.Errorf("refinement did not grow panels: %d vs %d", p1.N(), p2.N())
	}
}
