package batch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUGetOrCompute(t *testing.T) {
	c := NewLRU(4)
	v, computed, err := c.GetOrCompute("a", func() (any, error) { return 42, nil })
	if err != nil || !computed || v.(int) != 42 {
		t.Fatalf("first demand: v=%v computed=%v err=%v", v, computed, err)
	}
	v, computed, err = c.GetOrCompute("a", func() (any, error) { return 0, nil })
	if err != nil || computed || v.(int) != 42 {
		t.Fatalf("hit: v=%v computed=%v err=%v", v, computed, err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestLRUSingleFlight(t *testing.T) {
	c := NewLRU(4)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrCompute("key", func() (any, error) {
				calls.Add(1)
				return "x", nil
			})
			if err != nil || v.(string) != "x" {
				t.Errorf("v=%v err=%v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
}

func TestLRUErrorNotCached(t *testing.T) {
	c := NewLRU(4)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry cached (len=%d)", c.Len())
	}
	v, computed, err := c.GetOrCompute("k", func() (any, error) { return 7, nil })
	if err != nil || !computed || v.(int) != 7 {
		t.Fatalf("retry: v=%v computed=%v err=%v", v, computed, err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewLRU(2)
	for i := 0; i < 3; i++ {
		c.GetOrCompute(fmt.Sprintf("k%d", i), func() (any, error) { return i, nil })
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// k0 was least recently used and must be gone.
	_, computed, _ := c.GetOrCompute("k0", func() (any, error) { return -1, nil })
	if !computed {
		t.Fatal("k0 survived eviction")
	}
	// k2 must still be cached.
	v, computed, _ := c.GetOrCompute("k2", func() (any, error) { return -1, nil })
	if computed || v.(int) != 2 {
		t.Fatalf("k2 evicted (v=%v computed=%v)", v, computed)
	}
}
