package assembly

import (
	"testing"

	"parbem/internal/basis"
	"parbem/internal/geom"
)

func TestPartitionKCostBoundaries(t *testing.T) {
	st := geom.DefaultBus(4, 4).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := NewIntegrator()
	K := NumPairs(set.M())
	for _, d := range []int{1, 2, 5, 10, 16} {
		b := PartitionKCost(set, in, d)
		if len(b) != d+1 {
			t.Fatalf("d=%d: %d boundaries", d, len(b))
		}
		if b[0] != 0 || b[d] != K {
			t.Fatalf("d=%d: range [%d, %d] != [0, %d]", d, b[0], b[d], K)
		}
		for i := 0; i < d; i++ {
			if b[i+1] < b[i] {
				t.Fatalf("d=%d: boundaries not monotone: %v", d, b)
			}
		}
	}
}

func TestPartitionKCostSmallSetFallsBack(t *testing.T) {
	// With fewer templates than 2*d, the cost partition falls back to
	// the equal-count division.
	st := geom.DefaultCrossingPair().Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := NewIntegrator()
	K := NumPairs(set.M())
	b := PartitionKCost(set, in, set.M())
	want := PartitionK(K, set.M())
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("fallback mismatch at %d: %v vs %v", i, b, want)
		}
	}
}

func TestPartitionKCostBalancesEstimatedCost(t *testing.T) {
	st := geom.DefaultBus(5, 5).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := NewIntegrator()
	d := 8
	b := PartitionKCost(set, in, d)
	cfg := costConfig{farFactor: in.Cfg.FarFactor, midFactor: in.Cfg.MidFactor}
	// Exact per-partition estimated cost.
	costs := make([]float64, d)
	for p := 0; p < d; p++ {
		for k := b[p]; k < b[p+1]; k++ {
			i, j := KToIJ(k)
			costs[p] += pairCostEstimate(set, cfg, i, j)
		}
	}
	var min, max float64 = 1e300, 0
	for _, c := range costs {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// The sampled column model interpolates within columns, so allow a
	// generous imbalance bound; equal-count division is far worse.
	if max > 2.5*min {
		t.Errorf("estimated-cost imbalance too high: min %g max %g", min, max)
	}
}
