// Package artifact implements the disk-backed content-addressed blob
// store behind the staged extraction plans' persistent stage artifacts:
// near-field value arrays, precorrection rows, dense matrices and
// block-Cholesky factors keyed by a content hash of the exact geometry
// and solve options (see internal/plan's artifact codec).
//
// # On-disk format
//
// Each entry is one file <key>.art under the store root:
//
//	[8]  magic "PBART1\r\n"
//	[4]  LE key length
//	[k]  key bytes (must equal the file's base name)
//	[4]  LE payload length
//	[4]  LE CRC-32C (Castagnoli) of the payload
//	[n]  payload
//
// Writes are crash-safe the same way serve/journal compaction is: the
// entry is staged to a temp file, fsync'd, renamed over its final name,
// and the directory fsync'd, so a crash leaves either the old state or
// the new one — never a half-written entry under a live name. Reads
// verify the magic, the embedded key against the file name (a renamed
// or cross-linked blob must never be served under the wrong hash), the
// framed lengths and the CRC; any mismatch drops the entry (skip-and-
// log) and reports a miss, so the caller recomputes instead of
// consuming corruption.
//
// The store enforces an LRU size budget: when a Put would push the
// resident bytes over MaxBytes, least-recently-used entries are evicted
// until it fits. Recency survives only in memory (evictions after a
// restart fall back to file mtime order), which can only evict a warm
// entry early — never serve a stale one.
package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// magic identifies an artifact entry file.
const magic = "PBART1\r\n"

// suffix is the entry file extension.
const suffix = ".art"

// maxKeyLen bounds key length: keys are file names and URL path
// segments of the peer protocol.
const maxKeyLen = 128

// MaxEntryBytes caps one entry's payload (a defense against framing
// corruption allocating unbounded memory, like journal.maxRecordBytes).
const MaxEntryBytes = 256 << 20

// castagnoli is the CRC-32C table (matches serve/journal framing).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ValidKey reports whether key is safe as an entry name and a peer-
// protocol path segment: 1-128 chars of lowercase hex plus '-' and '.'
// separators, not starting with '.' or '-' (no dotfiles, no flag-like
// names, no path traversal).
func ValidKey(key string) bool {
	if len(key) == 0 || len(key) > maxKeyLen {
		return false
	}
	if key[0] == '.' || key[0] == '-' {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}

// Options configures a Store.
type Options struct {
	// MaxBytes is the LRU payload budget (0 = 1 GiB). Entries above the
	// budget evict least-recently-used first.
	MaxBytes int64
	// Logf receives corruption and eviction diagnostics (nil = discard).
	Logf func(format string, args ...any)
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// Corrupt counts entries dropped for failing verification (bad
	// magic, key mismatch, truncation, CRC mismatch).
	Corrupt uint64 `json:"corrupt"`
}

// entry is the in-memory index record of one resident blob.
type entry struct {
	size int64 // payload bytes
	seq  int64 // recency clock (higher = more recent)
}

// Store is a disk-backed content-addressed artifact store. Safe for
// concurrent use.
type Store struct {
	dir      string
	maxBytes int64
	logf     func(format string, args ...any)

	mu      sync.Mutex
	entries map[string]*entry
	bytes   int64
	clock   int64
	stats   Stats
}

// Open opens (creating if needed) the store rooted at dir and indexes
// the resident entries. Unreadable or misnamed files are skipped with a
// log line, never served.
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: opt.MaxBytes,
		logf:     opt.Logf,
		entries:  make(map[string]*entry),
	}
	if s.maxBytes <= 0 {
		s.maxBytes = 1 << 30
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	// Index by mtime order so pre-restart entries carry a sane relative
	// recency for the LRU.
	type resident struct {
		key   string
		size  int64
		mtime int64
	}
	var found []resident
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, suffix) {
			if strings.HasPrefix(name, ".tmp-") {
				// Torn write from a previous crash: the rename never
				// happened, so the entry was never live.
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		key := strings.TrimSuffix(name, suffix)
		if !ValidKey(key) {
			s.logf("artifact: skipping invalid entry name %q", name)
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		// Payload size = file size minus framing; verified on Get.
		size := info.Size() - int64(len(magic)+4+len(key)+4+4)
		if size < 0 {
			s.logf("artifact: dropping truncated entry %q", name)
			s.stats.Corrupt++
			os.Remove(filepath.Join(dir, name))
			continue
		}
		found = append(found, resident{key: key, size: size, mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, r := range found {
		s.clock++
		s.entries[r.key] = &entry{size: r.size, seq: s.clock}
		s.bytes += r.size
	}
	return s, nil
}

// path returns the entry file of key.
func (s *Store) path(key string) string { return filepath.Join(s.dir, key+suffix) }

// Get returns the payload stored under key, verifying the full frame.
// A corrupt entry is dropped (skip-and-log) and reported as a miss so
// the caller recomputes.
func (s *Store) Get(key string) ([]byte, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	s.mu.Lock()
	e := s.entries[key]
	if e != nil {
		s.clock++
		e.seq = s.clock
	}
	s.mu.Unlock()
	if e == nil {
		s.mu.Lock()
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.drop(key, fmt.Sprintf("unreadable: %v", err))
		return nil, false
	}
	payload, err := verifyFrame(key, data)
	if err != nil {
		s.drop(key, err.Error())
		return nil, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return payload, true
}

// verifyFrame checks an entry file against the expected key and returns
// the payload.
func verifyFrame(key string, data []byte) ([]byte, error) {
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return nil, errors.New("bad magic")
	}
	p := data[len(magic):]
	klen := int(binary.LittleEndian.Uint32(p))
	if klen > maxKeyLen || len(p) < 4+klen+8 {
		return nil, errors.New("truncated header")
	}
	if string(p[4:4+klen]) != key {
		return nil, fmt.Errorf("key mismatch: entry holds %q", p[4:4+klen])
	}
	p = p[4+klen:]
	plen := int64(binary.LittleEndian.Uint32(p))
	crc := binary.LittleEndian.Uint32(p[4:])
	if plen > MaxEntryBytes || int64(len(p)) != 8+plen {
		return nil, errors.New("truncated payload")
	}
	payload := p[8:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, errors.New("CRC mismatch")
	}
	return payload, nil
}

// drop removes a corrupt or unreadable entry.
func (s *Store) drop(key, reason string) {
	s.logf("artifact: dropping %s: %s", key, reason)
	s.mu.Lock()
	if e := s.entries[key]; e != nil {
		s.bytes -= e.size
		delete(s.entries, key)
	}
	s.stats.Corrupt++
	s.stats.Misses++
	s.mu.Unlock()
	os.Remove(s.path(key))
}

// Put stores payload under key, atomically (temp file + fsync + rename
// + directory fsync), evicting least-recently-used entries if the
// budget requires. Re-putting a resident key rewrites it in place
// (concurrent Gets see either complete frame, never a mix).
func (s *Store) Put(key string, payload []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("artifact: invalid key %q", key)
	}
	if int64(len(payload)) > MaxEntryBytes {
		return fmt.Errorf("artifact: payload of %d bytes exceeds the %d entry cap", len(payload), MaxEntryBytes)
	}
	if int64(len(payload)) > s.maxBytes {
		// Larger than the whole budget: storing it would evict
		// everything and then itself; skip.
		return fmt.Errorf("artifact: payload of %d bytes exceeds the %d byte budget", len(payload), s.maxBytes)
	}
	frame := make([]byte, 0, len(magic)+4+len(key)+8+len(payload))
	frame = append(frame, magic...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(key)))
	frame = append(frame, key...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	frame = append(frame, payload...)

	s.evictFor(key, int64(len(payload)))

	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if _, err := tmp.Write(frame); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}

	s.mu.Lock()
	s.clock++
	if e := s.entries[key]; e != nil {
		s.bytes += int64(len(payload)) - e.size
		e.size = int64(len(payload))
		e.seq = s.clock
	} else {
		s.entries[key] = &entry{size: int64(len(payload)), seq: s.clock}
		s.bytes += int64(len(payload))
	}
	s.stats.Puts++
	s.mu.Unlock()
	return nil
}

// evictFor makes room for a put of size bytes under key, removing
// least-recently-used entries (never key itself — a rewrite reuses its
// own budget).
func (s *Store) evictFor(key string, size int64) {
	var victims []string
	s.mu.Lock()
	resident := int64(0)
	if e := s.entries[key]; e != nil {
		resident = e.size
	}
	for s.bytes-resident+size > s.maxBytes && len(s.entries) > 0 {
		oldest, oldestSeq := "", int64(0)
		for k, e := range s.entries {
			if k == key {
				continue
			}
			if oldest == "" || e.seq < oldestSeq {
				oldest, oldestSeq = k, e.seq
			}
		}
		if oldest == "" {
			break
		}
		s.bytes -= s.entries[oldest].size
		delete(s.entries, oldest)
		s.stats.Evictions++
		victims = append(victims, oldest)
	}
	s.mu.Unlock()
	for _, k := range victims {
		s.logf("artifact: evicting %s (LRU, budget %d bytes)", k, s.maxBytes)
		os.Remove(s.path(k))
	}
}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the resident payload bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}

// syncDir fsyncs a directory so a rename is durable (the serve/journal
// idiom).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
