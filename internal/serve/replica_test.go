package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parbem/internal/batch"
	"parbem/internal/geom"
)

// replicaT is one in-process replica: a Server with its own artifact
// directory behind an httptest listener.
type replicaT struct {
	srv *Server
	ts  *httptest.Server
}

// openReplica starts a replica whose artifact store lives under a fresh
// temp dir; peers is the sibling base URLs.
func openReplica(t *testing.T, peers []string) *replicaT {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(Options{
		Workers:     2,
		DataDir:     dir,
		ArtifactDir: filepath.Join(dir, "artifacts"),
		Peers:       peers,
	})
	if err != nil {
		t.Fatalf("opening replica: %v", err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &replicaT{srv: s, ts: ts}
}

// barsN builds a structurally distinct family: n parallel bar
// conductors. Families differ by conductor count, so each routes (and
// caches) independently.
func barsN(n int) *geom.Structure {
	st := &geom.Structure{Name: fmt.Sprintf("bars-%d", n)}
	for i := 0; i < n; i++ {
		y := float64(i) * 2e-6
		st.Conductors = append(st.Conductors, &geom.Conductor{
			Name: fmt.Sprintf("bar%d", i),
			Boxes: []geom.Box{{
				Min: geom.Vec3{X: 0, Y: y, Z: 0},
				Max: geom.Vec3{X: 4e-6, Y: y + 1e-6, Z: 1e-6},
			}},
		})
	}
	return st
}

// metricValue extracts a counter value from Prometheus text exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("parsing %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("/metrics has no %s sample", name)
	return 0
}

// TestReplicaColdJoinPeerArtifacts is the core replica-set promise: a
// cold replica joining a warm peer serves the same family without
// redoing the expensive work — its plan adopts the peer's artifact
// (visible as a cross-replica artifact hit in /stats and /metrics) and
// the answer is numerically identical.
func TestReplicaColdJoinPeerArtifacts(t *testing.T) {
	warm := openReplica(t, nil)
	req := &ExtractRequest{Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6, Backend: "dense"}

	cw := NewClient(warm.ts.URL)
	ref, err := cw.Extract(context.Background(), req)
	if err != nil {
		t.Fatalf("warming replica A: %v", err)
	}
	ws := warm.srv.Stats()
	if ws.Artifacts == nil || ws.Artifacts.Puts == 0 {
		t.Fatalf("warm replica persisted no artifacts: %+v", ws.Artifacts)
	}

	cold := openReplica(t, []string{warm.ts.URL})
	cc := NewClient(cold.ts.URL)
	got, err := cc.Extract(context.Background(), req)
	if err != nil {
		t.Fatalf("extract on cold replica: %v", err)
	}
	if e := capError(got.CFarads, ref.CFarads); e > 1e-10 {
		t.Errorf("cold-replica result diverges from warm: capError %g", e)
	}

	st := cold.srv.Stats()
	if st.Artifacts == nil {
		t.Fatal("cold replica reports no artifact stats")
	}
	if st.Artifacts.PeerHits < 1 {
		t.Errorf("peer_hits = %d, want >= 1 (cold replica should fetch from the warm peer)", st.Artifacts.PeerHits)
	}

	// The same hit must be visible through both observability surfaces.
	var stats Stats
	if err := cc.get(context.Background(), "/stats", &stats); err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	if stats.Artifacts == nil || stats.Artifacts.PeerHits < 1 {
		t.Errorf("/stats artifacts = %+v, want peer_hits >= 1", stats.Artifacts)
	}
	resp, err := http.Get(cold.ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if v := metricValue(t, string(body), "parbem_artifact_peer_hits_total"); v < 1 {
		t.Errorf("parbem_artifact_peer_hits_total = %g, want >= 1", v)
	}
}

// TestReplicaSetCoordinatorSoak runs the full topology under load: 3
// artifact-peered replicas behind the consistent-hash coordinator,
// several structurally distinct families in flight concurrently, one
// replica killed mid-run. It asserts the three acceptance properties:
// every routed result matches a direct single-server solve to 1e-10,
// the kill costs zero failed client requests (the router absorbs it as
// failovers), and cross-replica artifact traffic actually happened.
func TestReplicaSetCoordinatorSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica soak is not a -short test")
	}

	// Direct reference solves from an isolated server: no artifacts, no
	// peers, no router.
	direct, err := Open(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	directTS := httptest.NewServer(direct.Handler())
	defer directTS.Close()
	dc := NewClient(directTS.URL)

	const edge = 0.5e-6
	type family struct {
		req *ExtractRequest
		ref [][]float64
		key string
	}
	opt, err := PipelineOptions("dense", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	var families []*family
	for n := 1; n <= 3; n++ {
		st := barsN(n)
		f := &family{
			req: &ExtractRequest{Geometry: geoText(t, st), EdgeM: edge, Backend: "dense"},
			key: batch.FamilyKey(st, edge, opt),
		}
		ref, err := dc.Extract(context.Background(), f.req)
		if err != nil {
			t.Fatalf("direct reference solve (bars-%d): %v", n, err)
		}
		f.ref = ref.CFarads
		families = append(families, f)
	}

	// The replica set: listeners first (their URLs seed the peer lists
	// and the ring), handlers swapped in once the servers exist.
	const nReplicas = 3
	urls := make([]string, nReplicas)
	sws := make([]*swapServer, nReplicas)
	for i := range sws {
		sws[i] = &swapServer{}
		ts := httptest.NewServer(sws[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		sws[i].ts = ts
	}
	servers := make([]*Server, nReplicas)
	for i := range servers {
		dir := t.TempDir()
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		s, err := Open(Options{
			Workers:     2,
			DataDir:     dir,
			ArtifactDir: filepath.Join(dir, "artifacts"),
			Peers:       peers,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		t.Cleanup(s.Close)
		servers[i] = s
		sws[i].set(s.Handler())
	}

	rt, err := NewRouter(RouterOptions{
		Replicas: urls,
		Retry:    &RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := NewClient(front.URL)

	// Warm every family through the coordinator (each lands on its ring
	// owner and persists its artifacts there), checking routed results
	// against the direct references as we go.
	for i, f := range families {
		res, err := client.Extract(context.Background(), f.req)
		if err != nil {
			t.Fatalf("warm extract family %d via coordinator: %v", i, err)
		}
		if e := capError(res.CFarads, f.ref); e > 1e-10 {
			t.Fatalf("family %d routed result off by %g vs direct", i, e)
		}
	}

	// Cold-replica cross-traffic: hit a non-owner replica directly for
	// family 0, forcing it to fetch the owner's artifacts over the peer
	// protocol.
	owner0 := rt.ring.owner(families[0].key)
	for _, u := range urls {
		if u != owner0 {
			nc := NewClient(u)
			if _, err := nc.Extract(context.Background(), families[0].req); err != nil {
				t.Fatalf("cold non-owner extract: %v", err)
			}
			break
		}
	}
	var peerHits uint64
	for _, s := range servers {
		if a := s.Stats().Artifacts; a != nil {
			peerHits += a.PeerHits
		}
	}
	if peerHits == 0 {
		t.Error("no cross-replica artifact hits after cold non-owner extract")
	}

	// Soak: concurrent routed extracts across all families while the
	// owner of family 1 is killed mid-run. The router must absorb the
	// kill as failovers; the clients must see zero failures.
	victim := -1
	owner1 := rt.ring.owner(families[1].key)
	for i, u := range urls {
		if u == owner1 {
			victim = i
			break
		}
	}
	const iters = 6
	var wg sync.WaitGroup
	var failed atomic.Int64
	var maxErr sync.Mutex
	worstErr := 0.0
	killed := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				f := families[(w+n)%len(families)]
				res, err := client.Extract(context.Background(), f.req)
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, n, err)
					failed.Add(1)
					continue
				}
				if e := capError(res.CFarads, f.ref); e > 1e-10 {
					maxErr.Lock()
					if e > worstErr {
						worstErr = e
					}
					maxErr.Unlock()
				}
				if w == 0 && n == 1 {
					// Kill the owner of family 1 mid-soak: in-flight
					// connections reset, the listener goes away.
					sws[victim].ts.CloseClientConnections()
					sws[victim].ts.Close()
					servers[victim].Close()
					close(killed)
				}
				if n == 1 && w != 0 {
					<-killed // everyone past iter 1 runs against the degraded set
				}
			}
		}(w)
	}
	wg.Wait()

	if got := failed.Load(); got != 0 {
		t.Errorf("%d client requests failed during the kill; want 0", got)
	}
	if worstErr > 0 {
		t.Errorf("routed results diverged up to %g from direct solves", worstErr)
	}
	if rt.Stats().Failovers == 0 {
		t.Error("router recorded no failovers despite a killed owner")
	}
	if rt.Stats().Unavailable != 0 {
		t.Errorf("router recorded %d unavailable requests; want 0", rt.Stats().Unavailable)
	}
}

// swapServer pairs a swappable handler with its listener so the soak
// can kill a replica by closing both.
type swapServer struct {
	ts *httptest.Server
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapServer) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.NotFound(w, r)
		return
	}
	h.ServeHTTP(w, r)
}
