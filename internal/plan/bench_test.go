package plan

import (
	"testing"

	"parbem/internal/fmm"
	"parbem/internal/op"
)

// BenchmarkSweepIncremental measures a 16-point crossing h-sweep
// through one plan on the fmm backend. One benchmark iteration is the
// whole sweep; cold_ms/pt is the from-scratch first point, warm_ms/pt
// the average of the 15 delta-reused points — their ratio is the
// per-point setup amortization the plan layer exists for.
func BenchmarkSweepIncremental(b *testing.B) {
	const edge = 0.25e-6
	const points = 16
	hs := make([]float64, points)
	for i := range hs {
		hs[i] = 0.3e-6 + 0.05e-6*float64(i)
	}
	opt := Options{MaxEdge: edge, Pipeline: op.Options{
		Backend: op.BackendFMM, Precond: op.PrecondBlockJacobi,
		Tol: 1e-8, FMM: &fmm.Options{Workers: 1},
	}}
	b.ResetTimer()
	var cold, warm float64
	for n := 0; n < b.N; n++ {
		p, err := New(opt)
		if err != nil {
			b.Fatal(err)
		}
		for i, h := range hs {
			res, err := p.Extract(crossingAt(h))
			if err != nil {
				b.Fatal(err)
			}
			ms := res.Total.Seconds() * 1e3
			if i == 0 {
				cold += ms
			} else {
				warm += ms
			}
		}
	}
	b.ReportMetric(cold/float64(b.N), "cold_ms/pt")
	b.ReportMetric(warm/float64(b.N*(points-1)), "warm_ms/pt")
}
