// Package pcbem is the classical piecewise-constant boundary element method
// that the paper positions as the baseline representation: conductor
// surfaces are discretized into rectangular panels, each carrying an
// unknown constant charge density, with Galerkin interactions assembled
// from the closed-form integrals of internal/kernel.
//
// It provides the dense direct solve (the accuracy reference used for
// Table 2's error figures), and the generic Krylov plumbing shared by the
// multipole (internal/fmm) and precorrected-FFT (internal/pfft)
// acceleration baselines.
package pcbem

import (
	"errors"
	"fmt"
	"time"

	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
)

// Problem is a panelized extraction problem.
type Problem struct {
	Panels        []geom.Panel
	NumConductors int
	Eps           float64
	Cfg           *kernel.Config
}

// NewProblem panelizes a structure with the given maximum panel edge.
func NewProblem(st *geom.Structure, maxEdge float64) (*Problem, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	panels := st.Panelize(maxEdge)
	if len(panels) == 0 {
		return nil, errors.New("pcbem: no panels generated")
	}
	return &Problem{
		Panels:        panels,
		NumConductors: st.NumConductors(),
		Eps:           kernel.Eps0,
		Cfg:           kernel.DefaultConfig(),
	}, nil
}

// N returns the number of unknowns (panels).
func (p *Problem) N() int { return len(p.Panels) }

// Entry computes one scaled Galerkin matrix entry P_ij.
func (p *Problem) Entry(i, j int) float64 {
	v := kernel.RectGalerkin(p.Cfg, p.Panels[i].Rect, p.Panels[j].Rect)
	return kernel.Scale(v, p.Eps)
}

// AssembleDense builds the full N x N Galerkin matrix.
func (p *Problem) AssembleDense() *linalg.Dense {
	n := p.N()
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := p.Entry(i, j)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// RHS builds the N x n right-hand-side matrix Phi: row i has the panel
// area in the column of its conductor (Galerkin testing of the unit
// potential).
func (p *Problem) RHS() *linalg.Dense {
	phi := linalg.NewDense(p.N(), p.NumConductors)
	for i, pan := range p.Panels {
		phi.Set(i, pan.Conductor, pan.Area())
	}
	return phi
}

// Result is a completed piecewise-constant extraction.
type Result struct {
	C          *linalg.Dense // n x n capacitance matrix (F)
	Rho        *linalg.Dense // N x n panel charge densities per excitation
	NumPanels  int
	Iterations int // total Krylov iterations (0 for direct)
	SetupTime  time.Duration
	SolveTime  time.Duration
}

// SolveDense assembles the dense system and solves it directly (Cholesky
// with LU fallback). It is O(N^2) memory and O(N^3) time: the "system
// solving bottleneck" the paper's introduction describes.
func (p *Problem) SolveDense() (*Result, error) {
	t0 := time.Now()
	P := p.AssembleDense()
	phi := p.RHS()
	setup := time.Since(t0)

	t1 := time.Now()
	var rho *linalg.Dense
	if ch, err := linalg.NewCholesky(P); err == nil {
		rho = ch.SolveMatrix(phi)
	} else {
		lu, luErr := linalg.NewLU(P)
		if luErr != nil {
			return nil, fmt.Errorf("pcbem: dense solve failed: %w", luErr)
		}
		rho = linalg.NewDense(p.N(), p.NumConductors)
		col := make([]float64, p.N())
		for j := 0; j < p.NumConductors; j++ {
			for i := 0; i < p.N(); i++ {
				col[i] = phi.At(i, j)
			}
			lu.Solve(col, col)
			for i := 0; i < p.N(); i++ {
				rho.Set(i, j, col[i])
			}
		}
	}
	c := capFromRho(phi, rho)
	return &Result{
		C: c, Rho: rho, NumPanels: p.N(),
		SetupTime: setup, SolveTime: time.Since(t1),
	}, nil
}

// SolveIterative solves the system with GMRES through an arbitrary matvec
// operator (dense, multipole-accelerated, or precorrected-FFT), with a
// Jacobi preconditioner built from the exact diagonal.
func (p *Problem) SolveIterative(op linalg.Matvec, tol float64) (*Result, error) {
	if op.Dim() != p.N() {
		return nil, errors.New("pcbem: operator dimension mismatch")
	}
	if tol == 0 {
		tol = 1e-4
	}
	n := p.N()
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = p.Entry(i, i)
	}
	phi := p.RHS()
	rho := linalg.NewDense(n, p.NumConductors)
	t1 := time.Now()
	iters := 0
	b := make([]float64, n)
	x := make([]float64, n)
	for j := 0; j < p.NumConductors; j++ {
		for i := 0; i < n; i++ {
			b[i] = phi.At(i, j)
			x[i] = 0
		}
		res, err := linalg.GMRES(op, x, b, linalg.GMRESOptions{
			Tol:     tol,
			Restart: 60,
			Precond: func(dst, r []float64) {
				for i := range dst {
					dst[i] = r[i] / diag[i]
				}
			},
		})
		if err != nil {
			return nil, fmt.Errorf("pcbem: GMRES failed on conductor %d: %w", j, err)
		}
		if !res.Converged {
			return nil, fmt.Errorf("pcbem: GMRES stalled on conductor %d (res %g)", j, res.Residual)
		}
		iters += res.Iterations
		for i := 0; i < n; i++ {
			rho.Set(i, j, x[i])
		}
	}
	c := capFromRho(phi, rho)
	return &Result{
		C: c, Rho: rho, NumPanels: n,
		Iterations: iters, SolveTime: time.Since(t1),
	}, nil
}

// capFromRho computes C = Phi^T rho, symmetrized.
func capFromRho(phi, rho *linalg.Dense) *linalg.Dense {
	n := phi.Cols
	c := linalg.NewDense(n, n)
	linalg.Mul(c, phi.Transpose(), rho)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (c.At(i, j) + c.At(j, i))
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
	return c
}

// DenseOp exposes the dense assembled matrix as a Matvec for testing the
// iterative path independently of the accelerated operators.
func (p *Problem) DenseOp() linalg.Matvec {
	return linalg.DenseOp{M: p.AssembleDense()}
}
