package fft

import (
	"math"
	"math/bits"
	"sync"
)

// Twiddle factors and bit-reversal permutations are precomputed per
// length and cached for the life of the process: one 3-D transform runs
// thousands of short 1-D line transforms, and a table lookup per
// butterfly beats both recomputing cmplx.Exp per stage and the lossy
// w *= wStep recurrence (which drifts by O(n eps) across a row). The
// caches are tiny — one entry per distinct grid edge and direction —
// and read-mostly; sync.Map keeps concurrent transforms lock-free on
// the hit path.

// twiddleCache holds the first-half roots of unity per (length, sign)
// in complex128; twiddle32Cache the complex64 roundings of the same
// float64 values (rounded once, so fp32 butterflies see the best
// possible twiddles).
var (
	twiddleCache   sync.Map
	twiddle32Cache sync.Map
	revCache       sync.Map
)

func twiddleKey(n int, sign float64) int64 {
	key := int64(n)
	if sign > 0 {
		key = -key
	}
	return key
}

// twiddles returns w[k] = exp(sign * 2 pi i k / n) for k in [0, n/2).
func twiddles(n int, sign float64) []complex128 {
	key := twiddleKey(n, sign)
	if w, ok := twiddleCache.Load(key); ok {
		return w.([]complex128)
	}
	w := make([]complex128, n/2)
	for k := range w {
		s, c := math.Sincos(sign * 2 * math.Pi * float64(k) / float64(n))
		w[k] = complex(c, s)
	}
	twiddleCache.Store(key, w)
	return w
}

// twiddles32 is the complex64 rounding of twiddles.
func twiddles32(n int, sign float64) []complex64 {
	key := twiddleKey(n, sign)
	if w, ok := twiddle32Cache.Load(key); ok {
		return w.([]complex64)
	}
	w := make([]complex64, n/2)
	for k := range w {
		s, c := math.Sincos(sign * 2 * math.Pi * float64(k) / float64(n))
		w[k] = complex(float32(c), float32(s))
	}
	twiddle32Cache.Store(key, w)
	return w
}

// revTable returns the bit-reversal permutation for length n: rev[i] is
// the bit-reverse of i.
func revTable(n int) []int32 {
	if r, ok := revCache.Load(n); ok {
		return r.([]int32)
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	rev := make([]int32, n)
	if n > 1 {
		for i := range rev {
			rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
		}
	}
	revCache.Store(n, rev)
	return rev
}
