//go:build race

package serve

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation distorts the timing ratios the
// speedup tests assert on.
const raceEnabled = true
