package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"parbem/internal/serve/journal"
)

// pollJob waits until the job reaches a terminal status.
func pollJob(t *testing.T, c *Client, id string) *JobResponse {
	t.Helper()
	ctx := context.Background()
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		jr, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		switch jr.Status {
		case "done", "failed", "cancelled":
			return jr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// TestServeJournalRestartRestoresResults pins the durability contract:
// an async job completed before a restart stays queryable — same id,
// same capacitance matrix — from a fresh server over the same data dir.
func TestServeJournalRestartRestoresResults(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := &ExtractRequest{Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6, Backend: "dense"}

	s1, err := Open(Options{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	c1 := NewClient(hs1.URL)
	id, err := c1.ExtractAsync(ctx, req)
	if err != nil {
		t.Fatalf("async extract: %v", err)
	}
	jr := pollJob(t, c1, id)
	if jr.Status != "done" || jr.Result == nil {
		t.Fatalf("job finished as %q (result %v)", jr.Status, jr.Result)
	}
	hs1.Close()
	s1.Close()

	// A fresh lifetime over the same data dir still answers for the job.
	s2, err := Open(Options{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer func() { hs2.Close(); s2.Close() }()
	c2 := NewClient(hs2.URL)
	jr2, err := c2.Job(ctx, id)
	if err != nil {
		t.Fatalf("job after restart: %v", err)
	}
	if jr2.Status != "done" || jr2.Result == nil {
		t.Fatalf("restored job is %q (result %v), want done", jr2.Status, jr2.Result)
	}
	if e := capError(jr2.Result.CFarads, jr.Result.CFarads); e > 0 {
		t.Errorf("restored result deviates from the original by %.3g", e)
	}
}

// TestServeJournalReenqueueUnfinished pins replay of a job a crash left
// unfinished: an accepted record with no terminal outcome (exactly what
// a SIGKILL between admission and completion leaves behind) is re-run
// on the next start and ends terminal exactly once, preserving
// accepted == completed + failed + cancelled.
func TestServeJournalReenqueueUnfinished(t *testing.T) {
	dir := t.TempDir()
	req := &ExtractRequest{Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6,
		Backend: "dense", Async: true}
	raw, _ := json.Marshal(req)

	j, _, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journal.Record{JobID: "j000007", State: journal.StateAccepted,
		Kind: "extract", IdemKey: "crashed-submit", Request: raw}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journal.Record{JobID: "j000007", State: journal.StateRunning}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	s, err := Open(Options{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("Open over crashed journal: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	defer func() { hs.Close(); s.Close() }()
	c := NewClient(hs.URL)
	jr := pollJob(t, c, "j000007")
	if jr.Status != "done" || jr.Result == nil {
		t.Fatalf("replayed job finished as %q, want done", jr.Status)
	}
	st := s.Stats()
	if st.Replayed != 1 {
		t.Errorf("jobs_replayed = %d, want 1", st.Replayed)
	}
	if st.Accepted != st.Completed+st.Failed+st.Cancelled {
		t.Errorf("accounting broken after replay: accepted %d != %d+%d+%d",
			st.Accepted, st.Completed, st.Failed, st.Cancelled)
	}
	// A retried submit carrying the crashed job's idempotency key must
	// observe the replayed job, not enqueue a twin.
	r2 := *req
	r2.IdempotencyKey = "crashed-submit"
	id, err := c.ExtractAsync(context.Background(), &r2)
	if err != nil {
		t.Fatalf("idempotent resubmit: %v", err)
	}
	if id != "j000007" {
		t.Errorf("resubmit created job %s, want the replayed j000007", id)
	}
	if got := s.Stats().IdempotentHits; got != 1 {
		t.Errorf("idempotent_hits = %d, want 1", got)
	}
	// New ids must not collide with replayed ones.
	id2, err := c.ExtractAsync(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= "j000007" {
		t.Errorf("fresh job id %s did not advance past the replayed j000007", id2)
	}
}

// TestServeDrain pins graceful drain: during a drain, /healthz flips to
// 503 draining, admission rejects with a structured draining error
// carrying Retry-After, and Drain returns cleanly once the backlog
// finishes.
func TestServeDrain(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1, Runners: 1})

	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &job{kind: "extract", class: classInteractive, done: make(chan struct{})}
	blocker.run = func() (any, error) { close(started); <-release; return nil, nil }
	if _, err := s.admit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(30 * time.Second) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// Health flips to 503 draining.
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || health["status"] != "draining" {
		t.Errorf("healthz during drain: HTTP %d %v, want 503 draining", resp.StatusCode, health)
	}

	// Admission rejects with draining + Retry-After.
	req := &ExtractRequest{Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6, Backend: "dense"}
	buf, _ := json.Marshal(req)
	post, err := http.Post(c.BaseURL+"/extract", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	json.NewDecoder(post.Body).Decode(&env)
	post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != CodeDraining {
		t.Fatalf("admission during drain: HTTP %d %+v, want 503 draining", post.StatusCode, env.Error)
	}
	if post.Header.Get("Retry-After") == "" || env.Error.RetryAfterSec <= 0 {
		t.Errorf("draining rejection carries no Retry-After (header %q, body %v)",
			post.Header.Get("Retry-After"), env.Error.RetryAfterSec)
	}
	if got := s.Stats().RejectedDraining; got != 1 {
		t.Errorf("jobs_rejected_draining = %d, want 1", got)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	st := s.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Errorf("post-drain backlog: %d queued, %d running", st.Queued, st.Running)
	}
}

// TestServeDrainForceInterrupts pins the overrun path: a job that
// outlives the drain timeout is cancelled through the base context and
// journaled as interrupted — a non-terminal state the next lifetime
// re-enqueues.
func TestServeDrainForceInterrupts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Workers: 1, Runners: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	req := &ExtractRequest{Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6,
		Backend: "dense", Async: true}
	raw, _ := json.Marshal(req)

	started := make(chan struct{})
	j := &job{kind: "extract", class: classInteractive, done: make(chan struct{}),
		journaled: true, reqJSON: raw}
	j.ctx, j.cancel = s.jobContext(context.Background(), 0)
	j.run = func() (any, error) {
		close(started)
		<-j.ctx.Done() // honors cancellation like a GMRES checkpoint
		return nil, requestErrorFor(j.ctx.Err(), time.Millisecond)
	}
	if _, err := s.admit(j); err != nil {
		t.Fatal(err)
	}
	<-started

	if err := s.Drain(50 * time.Millisecond); err == nil {
		t.Fatal("overrun drain reported a clean stop")
	}
	if got := s.Stats().Interrupted; got != 1 {
		t.Errorf("jobs_interrupted = %d, want 1", got)
	}
	s.Close()

	// The journal must hold the job in a non-terminal state: the next
	// lifetime owes it a run.
	jj, entries, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jj.Close()
	if len(entries) != 1 {
		t.Fatalf("journal holds %d entries, want 1", len(entries))
	}
	if e := entries[0]; e.State != journal.StateInterrupted || journal.Terminal(e.State) {
		t.Errorf("interrupted job journaled as %q, want interrupted", e.State)
	}
}

// TestServeQueueFullRetryAfter pins backpressure advice: a queue_full
// rejection carries a positive RetryAfterSec and the HTTP header.
func TestServeQueueFullRetryAfter(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1, Runners: 1, QueueDepth: 1})

	started := make(chan struct{})
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	blocker := &job{kind: "extract", class: classInteractive, done: make(chan struct{})}
	blocker.run = func() (any, error) { close(started); <-release; return nil, nil }
	if _, err := s.admit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started
	filler := &job{kind: "extract", class: classInteractive, done: make(chan struct{})}
	filler.run = func() (any, error) { return nil, nil }
	if _, err := s.admit(filler); err != nil {
		t.Fatal(err)
	}

	req := &ExtractRequest{Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6, Backend: "dense"}
	buf, _ := json.Marshal(req)
	resp, err := http.Post(c.BaseURL+"/extract", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || env.Error == nil || env.Error.Code != CodeQueueFull {
		t.Fatalf("full-queue submit: HTTP %d %+v, want 429 queue_full", resp.StatusCode, env.Error)
	}
	if env.Error.RetryAfterSec < 1 {
		t.Errorf("queue_full retry_after_sec = %v, want >= 1", env.Error.RetryAfterSec)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue_full response carries no Retry-After header")
	}
	var re *RequestError
	if _, err := c.Extract(context.Background(), req); !errors.As(err, &re) || re.RetryAfterSec < 1 {
		t.Errorf("client-decoded queue_full error = %v, want RetryAfterSec >= 1", err)
	}
}

// TestClientRetryBackoff pins the client's resilience loop: retryable
// 503s are retried under the policy, server retry advice is honored,
// and the call succeeds once the server recovers.
func TestClientRetryBackoff(t *testing.T) {
	var mu sync.Mutex
	fails := 2
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if fails > 0 {
			fails--
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(errorEnvelope{Error: &RequestError{
				Code: CodeDraining, Message: "draining", RetryAfterSec: 0.02}})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"ok": true})
	}))
	defer hs.Close()

	c := NewClient(hs.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond}
	retries, honored := 0, 0
	c.OnRetry = func(attempt int, wait time.Duration, h bool, err error) {
		retries++
		if h {
			honored++
		}
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health through two 503s: %v", err)
	}
	if retries != 2 {
		t.Errorf("retries = %d, want 2", retries)
	}
	// 20ms advice always exceeds the 1-2ms backoff: both waits honored.
	if honored != 2 {
		t.Errorf("honored Retry-After waits = %d, want 2", honored)
	}
}

// TestClientRetrySkipsPermanentErrors pins that non-retryable
// rejections (bad request) fail immediately, with no backoff burned.
func TestClientRetrySkipsPermanentErrors(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(errorEnvelope{Error: &RequestError{
			Code: CodeBadRequest, Message: "no"}})
	}))
	defer hs.Close()

	c := NewClient(hs.URL)
	c.Retry = DefaultRetry
	retries := 0
	c.OnRetry = func(int, time.Duration, bool, error) { retries++ }
	var re *RequestError
	if err := c.Health(context.Background()); !errors.As(err, &re) || re.Code != CodeBadRequest {
		t.Fatalf("got %v, want structured bad_request", err)
	}
	if retries != 0 {
		t.Errorf("permanent error was retried %d times", retries)
	}
}
