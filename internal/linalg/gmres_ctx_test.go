package linalg

import (
	"context"
	"errors"
	"testing"
	"time"
)

// slowOp wraps a dense operator with a per-apply delay, so a context
// deadline reliably lands in the middle of the Arnoldi loop.
type slowOp struct {
	d     *Dense
	delay time.Duration
}

func (s slowOp) Apply(dst, x []float64) {
	time.Sleep(s.delay)
	s.d.MulVec(dst, x)
}

func (s slowOp) Dim() int { return s.d.Rows }

// lap1d builds the 1-D Laplacian tridiag(-1, 2, -1): well conditioned
// enough to converge, slow enough (≈n iterations at tight tolerance)
// that a mid-solve deadline has iterations to interrupt.
func lap1d(n int) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 2)
		if i > 0 {
			a.Set(i, i-1, -1)
		}
		if i < n-1 {
			a.Set(i, i+1, -1)
		}
	}
	return a
}

// TestGMRESContextCheckpoints pins the per-iteration deadline
// checkpoint: a deadline expiring mid-solve stops GMRES within the
// next iteration — partial iteration count reported, ctx error
// returned — instead of running the solve to completion.
func TestGMRESContextCheckpoints(t *testing.T) {
	const n = 64
	a := lap1d(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}

	// Undeadlined reference: how many iterations the solve needs (full
	// GMRES, no restart — the 1-D Laplacian takes ≈n of them).
	x := make([]float64, n)
	ref, err := GMRES(DenseOp{M: a}, x, b, GMRESOptions{Tol: 1e-10, Restart: n})
	if err != nil || !ref.Converged {
		t.Fatalf("reference solve: %+v, %v", ref, err)
	}
	if ref.Iterations < 10 {
		t.Fatalf("reference converged in %d iterations; too fast to interrupt", ref.Iterations)
	}

	// With ~1ms per matvec and an 8ms deadline, the solve must stop
	// long before the reference iteration count.
	op := slowOp{d: a, delay: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Millisecond)
	defer cancel()
	x2 := make([]float64, n)
	res, err := GMRES(op, x2, b, GMRESOptions{Tol: 1e-10, Restart: n, Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadlined solve returned %v, want context.DeadlineExceeded", err)
	}
	if res.Iterations <= 0 || res.Iterations >= ref.Iterations {
		t.Errorf("interrupted after %d iterations, want in (0, %d): the checkpoint fired at the wrong time",
			res.Iterations, ref.Iterations)
	}

	// A context already done is observed before any work.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	x3 := make([]float64, n)
	res, err = GMRES(DenseOp{M: a}, x3, b, GMRESOptions{Tol: 1e-10, Ctx: done})
	if !errors.Is(err, context.Canceled) || res.Iterations != 0 {
		t.Errorf("pre-cancelled solve ran %d iterations with err %v, want 0 and context.Canceled",
			res.Iterations, err)
	}
}
