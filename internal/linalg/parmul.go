package linalg

import "parbem/internal/sched"

// parRowChunk is the row-block granularity of the parallel matrix
// kernels: large enough that each task amortizes scheduler overhead,
// small enough to load-balance.
const parRowChunk = 32

// ParMulVec computes dst = m * x with row blocks distributed over the
// executor. Falls back to the serial kernel when ex is nil. Results are
// bit-identical to MulVec (each row is one Dot in a fixed order).
func ParMulVec(ex sched.Executor, m *Dense, dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("linalg: ParMulVec dimension mismatch")
	}
	if ex == nil || m.Rows < 2*parRowChunk {
		m.MulVec(dst, x)
		return
	}
	chunks := (m.Rows + parRowChunk - 1) / parRowChunk
	ex.Map(chunks, func(c int) {
		lo := c * parRowChunk
		hi := lo + parRowChunk
		if hi > m.Rows {
			hi = m.Rows
		}
		for i := lo; i < hi; i++ {
			dst[i] = Dot(m.Row(i), x)
		}
	})
}

// ParMul computes c = a * b with row blocks of c distributed over the
// executor. Falls back to the serial kernel when ex is nil.
func ParMul(ex sched.Executor, c, a, b *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("linalg: ParMul dimension mismatch")
	}
	if ex == nil || a.Rows < 2*parRowChunk {
		Mul(c, a, b)
		return
	}
	chunks := (a.Rows + parRowChunk - 1) / parRowChunk
	ex.Map(chunks, func(ch int) {
		lo := ch * parRowChunk
		hi := lo + parRowChunk
		if hi > a.Rows {
			hi = a.Rows
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for j := range crow {
				crow[j] = 0
			}
			for k, av := range arow {
				Axpy(av, b.Row(k), crow)
			}
		}
	})
}
